package scenario

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"krum/attack"
	"krum/internal/core"
	"krum/internal/sgd"
	"krum/internal/vec"
	"krum/workload"
)

// quickSpec is a seconds-scale training cell used across the tests.
func quickSpec() Spec {
	return Spec{
		Workload:  "gmm(k=3,dim=6,radius=4,sigma=0.5)",
		Rule:      "krum",
		Attack:    "gaussian(sigma=200)",
		Schedule:  "inverset(gamma=0.5,power=0.75,t0=50)",
		N:         9,
		F:         2,
		Rounds:    30,
		BatchSize: 8,
		Seed:      11,
		EvalEvery: 10,
		EvalBatch: 128,
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := quickSpec()
	s.Name = "cell-0"
	s.TrackSelection = true
	data, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpecJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", s, back)
	}
}

func TestParseSpecJSONRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpecJSON([]byte(`{"rule": "krum", "typo_field": 3}`)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown field accepted: %v", err)
	}
}

// TestValidateWrapsAxisSentinels: each axis failure surfaces the owning
// registry's sentinel, so callers can tell which layer rejected a
// config file.
func TestValidateWrapsAxisSentinels(t *testing.T) {
	good := quickSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		mutate func(*Spec)
		want   error
	}{
		{func(s *Spec) { s.Rule = "nosuchrule" }, core.ErrBadParameter},
		{func(s *Spec) { s.Rule = "krum(f=x)" }, core.ErrBadParameter},
		{func(s *Spec) { s.Attack = "nosuchattack" }, attack.ErrBadSpec},
		{func(s *Spec) { s.Schedule = "inverset(gamma=0)" }, sgd.ErrBadSchedule},
		{func(s *Spec) { s.Workload = "mnist(size=1)" }, workload.ErrBadSpec},
		{func(s *Spec) { s.Rule = "" }, ErrBadSpec},
		{func(s *Spec) { s.Schedule = "" }, ErrBadSpec},
		{func(s *Spec) { s.Workload = "" }, ErrBadSpec},
		{func(s *Spec) { s.F = s.N }, ErrBadSpec},
		{func(s *Spec) { s.Rounds = 0 }, ErrBadSpec},
		{func(s *Spec) { s.BatchSize = 0 }, ErrBadSpec},
	}
	for i, tc := range cases {
		s := quickSpec()
		tc.mutate(&s)
		if err := s.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("case %d: Validate() = %v, want %v", i, err, tc.want)
		}
	}
}

func TestMatrixCellsExpansion(t *testing.T) {
	m := Matrix{
		Base:    quickSpec(),
		Rules:   []string{"krum", "average"},
		Attacks: []string{"none", "gaussian(sigma=200)", "signflip"},
		Fs:      []int{0, 2},
		Seeds:   []uint64{1, 2},
	}
	cells := m.Cells()
	if len(cells) != m.Size() || len(cells) != 2*3*2*2 {
		t.Fatalf("%d cells, Size() = %d, want 24", len(cells), m.Size())
	}
	// Seeds vary fastest; rules slowest (no workload axis).
	if cells[0].Seed != 1 || cells[1].Seed != 2 {
		t.Errorf("seed order: %d, %d", cells[0].Seed, cells[1].Seed)
	}
	if cells[0].Rule != "krum" || cells[len(cells)-1].Rule != "average" {
		t.Errorf("rule order: %s ... %s", cells[0].Rule, cells[len(cells)-1].Rule)
	}
	if cells[0].Attack != "none" {
		t.Errorf("first attack %q", cells[0].Attack)
	}
	// Axes not swept inherit the base.
	for _, c := range cells {
		if c.Workload != m.Base.Workload || c.Schedule != m.Base.Schedule {
			t.Fatalf("cell lost base fields: %+v", c)
		}
		if c.Name == "" {
			t.Fatal("cell has no generated name")
		}
	}
	// Expansion is deterministic.
	if !reflect.DeepEqual(cells, m.Cells()) {
		t.Error("two expansions differ")
	}
}

func TestMatrixDeriveSeeds(t *testing.T) {
	m := Matrix{
		Base:        quickSpec(),
		Rules:       []string{"krum", "average"},
		Fs:          []int{0, 2},
		DeriveSeeds: true,
	}
	cells := m.Cells()
	seen := map[uint64]bool{}
	for _, c := range cells {
		if seen[c.Seed] {
			t.Fatalf("derived seed %d repeats", c.Seed)
		}
		seen[c.Seed] = true
	}
	if !reflect.DeepEqual(cells, m.Cells()) {
		t.Error("derived seeds are not deterministic")
	}
}

func TestMatrixJSONRoundTrip(t *testing.T) {
	m := Matrix{
		Base:  quickSpec(),
		Rules: []string{"krum", "multikrum(f=2,m=4)"},
		Seeds: []uint64{1, 2, 3},
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseMatrixJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", m, back)
	}
	if _, err := ParseMatrixJSON([]byte(`{"base": {}, "rulez": []}`)); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown field accepted: %v", err)
	}
}

func TestMatrixValidateReportsCell(t *testing.T) {
	m := Matrix{Base: quickSpec(), Rules: []string{"krum", "nosuchrule"}}
	err := m.Validate()
	if !errors.Is(err, core.ErrBadParameter) {
		t.Fatalf("Validate() = %v", err)
	}
	if !strings.Contains(err.Error(), "cell 1") {
		t.Errorf("error does not name the failing cell: %v", err)
	}
	if err := (Matrix{Base: quickSpec()}).Validate(); err != nil {
		t.Errorf("singleton matrix rejected: %v", err)
	}
}

// TestRunnerDeterministicAcrossWorkerCounts is the concurrency
// contract: the same matrix produces identical per-cell results
// whatever the goroutine pool size or interleaving.
func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	m := Matrix{
		Base:  quickSpec(),
		Rules: []string{"krum", "average"},
		Fs:    []int{0, 2},
		Seeds: []uint64{5, 6},
	}
	serial, err := (&Runner{Workers: 1}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 8}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) != m.Size() {
		t.Fatalf("result counts: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Index != i || b.Index != i {
			t.Fatalf("cell %d: index mismatch (%d, %d)", i, a.Index, b.Index)
		}
		if !vec.ApproxEqual(a.Result.FinalParams, b.Result.FinalParams, 0) {
			t.Errorf("cell %d (%s): FinalParams differ across worker counts", i, a.Spec.Label())
		}
		if len(a.Result.History) != len(b.Result.History) {
			t.Errorf("cell %d: history lengths differ", i)
			continue
		}
		for r := range a.Result.History {
			if a.Result.History[r] != b.Result.History[r] {
				t.Errorf("cell %d round %d: %+v != %+v", i, r, a.Result.History[r], b.Result.History[r])
				break
			}
		}
	}
}

// TestRunnerDeterministicWithIncrementalCache extends the concurrency
// contract to the cross-round incremental distance cache: with
// Incremental set on every cell, results must be byte-identical (a)
// across runner worker counts and (b) against the same matrix with the
// cache disabled. The crash attack freezes the Byzantine proposals
// from round 3 on, so the cached cells genuinely serve rounds through
// incremental row updates instead of rebuilding every round.
func TestRunnerDeterministicWithIncrementalCache(t *testing.T) {
	base := quickSpec()
	base.Attack = "crash(after=3)"
	base.Incremental = true
	m := Matrix{
		Base:  base,
		Rules: []string{"krum", "multikrum(m=5)"},
		Seeds: []uint64{5, 6},
	}
	serial, err := (&Runner{Workers: 1}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 8}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	plainMatrix := m
	plainMatrix.Base.Incremental = false
	plain, err := (&Runner{Workers: 4}).Run(plainMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != m.Size() || len(parallel) != m.Size() || len(plain) != m.Size() {
		t.Fatalf("result counts: %d / %d / %d, want %d", len(serial), len(parallel), len(plain), m.Size())
	}
	for i := range serial {
		a, b, c := serial[i], parallel[i], plain[i]
		if !reflect.DeepEqual(a.Result.FinalParams, b.Result.FinalParams) {
			t.Errorf("cell %d (%s): FinalParams differ across worker counts", i, a.Spec.Label())
		}
		if !reflect.DeepEqual(a.Result.FinalParams, c.Result.FinalParams) {
			t.Errorf("cell %d (%s): incremental cache changed FinalParams", i, a.Spec.Label())
		}
		if !reflect.DeepEqual(a.Result.History, b.Result.History) {
			t.Errorf("cell %d: history differs across worker counts", i)
		}
		if !reflect.DeepEqual(a.Result.History, c.Result.History) {
			t.Errorf("cell %d: incremental cache changed the round history", i)
		}
	}
}

// TestRunnerDeterministicWithScreening extends the same contract to
// screened selection: with Screened set on every cell, results must be
// byte-identical across runner worker counts and against the dense
// matrix. The Gaussian attack keeps a σ = 200 Byzantine population, so
// the screened cells genuinely prune rows rather than evaluating
// everything; the combination cell also sets Incremental, covering the
// screener's cross-round bounds repair. Run under -race in CI, this is
// the race-checked screened-vs-naive equivalence gate.
func TestRunnerDeterministicWithScreening(t *testing.T) {
	base := quickSpec()
	base.Attack = "gaussian(sigma=200)"
	base.Screened = true
	m := Matrix{
		Base:  base,
		Rules: []string{"krum", "multikrum(m=5)"},
		Seeds: []uint64{5, 6},
	}
	prunes := vec.ScreenPruneCount()
	serial, err := (&Runner{Workers: 1}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if vec.ScreenPruneCount() == prunes {
		t.Error("screened matrix never pruned a row: screening path not exercised")
	}
	parallel, err := (&Runner{Workers: 8}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	denseMatrix := m
	denseMatrix.Base.Screened = false
	combinedMatrix := m
	combinedMatrix.Base.Incremental = true
	dense, err := (&Runner{Workers: 4}).Run(denseMatrix)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := (&Runner{Workers: 4}).Run(combinedMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != m.Size() || len(parallel) != m.Size() || len(dense) != m.Size() || len(combined) != m.Size() {
		t.Fatalf("result counts: %d / %d / %d / %d, want %d",
			len(serial), len(parallel), len(dense), len(combined), m.Size())
	}
	for i := range serial {
		a := serial[i]
		for _, other := range []struct {
			name string
			r    CellResult
		}{{"worker-count", parallel[i]}, {"dense", dense[i]}, {"screened+incremental", combined[i]}} {
			if !reflect.DeepEqual(a.Result.FinalParams, other.r.Result.FinalParams) {
				t.Errorf("cell %d (%s): FinalParams differ vs %s", i, a.Spec.Label(), other.name)
			}
			if !reflect.DeepEqual(a.Result.History, other.r.Result.History) {
				t.Errorf("cell %d: history differs vs %s", i, other.name)
			}
		}
	}
}

// TestSpecScreenedRoundTrip: the Screened axis must survive the JSON
// round-trip (strict decoding included) and land in the compiled
// distsgd.Config.
func TestSpecScreenedRoundTrip(t *testing.T) {
	s := quickSpec()
	s.Screened = true
	s.Incremental = true
	blob, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpecJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Screened || !back.Incremental {
		t.Errorf("round-trip lost flags: %+v", back)
	}
	cfg, err := back.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Screened || !cfg.Incremental {
		t.Errorf("compile lost flags: screened=%v incremental=%v", cfg.Screened, cfg.Incremental)
	}
	// Unset it stays omitted — the JSON form of old specs is unchanged,
	// so pre-existing store keys cannot shift.
	s.Screened = false
	s.Incremental = false
	blob, err = s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), `"screened"`) || strings.Contains(string(blob), `"incremental"`) {
		t.Errorf("zero-value flags serialized: %s", blob)
	}
}

// TestRunnerStreamsEveryCell: OnCell sees each cell exactly once, and
// FinalParams mutations by the callback cannot corrupt engine state
// (the defensive-copy contract).
func TestRunnerStreamsEveryCell(t *testing.T) {
	m := Matrix{Base: quickSpec(), Seeds: []uint64{1, 2, 3}}
	seen := map[int]int{}
	r := &Runner{Workers: 3, OnCell: func(cr CellResult) {
		seen[cr.Index]++ // serialized callback: no locking needed
		if cr.Result != nil && len(cr.Result.FinalParams) > 0 {
			cr.Result.FinalParams[0] = math.Inf(1)
		}
	}}
	results, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("OnCell saw %d cells, want 3", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("cell %d observed %d times", i, n)
		}
	}
	for _, cr := range results {
		if !math.IsInf(cr.Result.FinalParams[0], 1) {
			t.Error("results slice and callback see different CellResult values")
		}
	}
}

// TestRunnerCellErrors: a failing cell is reported both in its
// CellResult and in the joined error, and does not stop other cells.
func TestRunnerCellErrors(t *testing.T) {
	good := quickSpec()
	bad := quickSpec()
	bad.Workload = "nosuchworkload"
	results, err := (&Runner{Workers: 2}).RunCells([]Spec{good, bad})
	if !errors.Is(err, workload.ErrBadSpec) {
		t.Fatalf("joined error = %v", err)
	}
	if results[0].Err != nil || results[0].Result == nil {
		t.Errorf("good cell failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("bad cell reported no error")
	}
	if _, err := (&Runner{}).RunCells(nil); !errors.Is(err, ErrBadSpec) {
		t.Errorf("empty cell list: %v", err)
	}
}

// TestCompileRunsUnderAttack is the end-to-end smoke test: a spec
// compiled from pure strings trains and the Byzantine-resilient rule
// survives the attack.
func TestCompileRunsUnderAttack(t *testing.T) {
	s := quickSpec()
	s.Rounds = 60
	res := RunCell(nil, 0, s)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Result.Diverged {
		t.Error("krum diverged under gaussian attack")
	}
	if math.IsNaN(res.Result.FinalTestAccuracy) {
		t.Error("run with EvalEvery > 0 never evaluated")
	}
}
