package scenario

import (
	"container/list"
	"sync"

	"krum/distsgd"
	"krum/workload"
)

// CellExecutor runs one matrix cell and returns its outcome. It is the
// seam that lets a Runner (and the krum-scenariod service) execute
// cells somewhere other than the calling process: the default
// LocalExecutor compiles and trains in-process, while the scenariod
// coordinator's executor dispatches cells over HTTP to a worker fleet.
// Implementations must be safe for concurrent use (Runner calls
// ExecuteCell from multiple goroutines) and must preserve the cell
// purity contract: the returned Result depends only on the Spec, so
// local and remote execution of one cell are byte-identical under
// distsgd.Result's stable JSON encoding.
type CellExecutor interface {
	// ExecuteCell runs cell and returns its CellResult with Index set to
	// index (the position the caller will slot the result into).
	ExecuteCell(index int, cell Spec) CellResult
}

// LocalExecutor is the default CellExecutor: it consults the store,
// compiles the cell and trains it in-process — exactly the path
// RunCell implements. The zero value (nil Store) runs every cell cold.
type LocalExecutor struct {
	// Store, when non-nil, is consulted before computing and written
	// through after (see Runner.Store for the full contract).
	Store ResultStore
}

// ExecuteCell implements CellExecutor via RunCell.
func (e LocalExecutor) ExecuteCell(index int, cell Spec) CellResult {
	return RunCell(e.Store, index, cell)
}

// SingleFlighter is an optional ResultStore extension (implemented by
// scenario/store's Store): DoCell collapses concurrent executions of
// identical cell specs into one compute — when several callers submit
// the same key while no result is stored yet, exactly one runs compute
// and the rest wait for its outcome. RunCellWith routes through it
// automatically, so any Runner or service sharing a single-flight
// store deduplicates in-flight work across goroutines, matrices and
// (via the scenariod coordinator) worker processes.
type SingleFlighter interface {
	// DoCell returns the cell's result, computing it via compute at most
	// once per key across concurrent callers. shared reports that the
	// result arrived without invoking compute in this call (a store hit
	// or another caller's in-flight execution); storeErr is a failed
	// write-through (the result is still valid); runErr is compute's
	// failure, propagated to every waiter.
	DoCell(spec Spec, compute func() (*distsgd.Result, error)) (res *distsgd.Result, shared bool, storeErr, runErr error)
}

// ComputeCell compiles and trains one cell in-process, ignoring any
// store — the miss path of local execution, and the compute function a
// scenariod worker runs for dispatched cells.
func ComputeCell(cell Spec) (*distsgd.Result, error) {
	cfg, err := cell.Compile()
	if err != nil {
		return nil, err
	}
	return distsgd.Run(cfg)
}

// DefaultWorkloadCacheSize is the WorkloadCache capacity used when the
// caller passes 0 — big enough to cover the handful of workload×seed
// combinations an affinity window keeps on one worker, small enough
// that even large-dataset bundles stay cheap to retain.
const DefaultWorkloadCacheSize = 8

// workloadKey identifies one constructed workload bundle: the raw
// registry spec string plus the seed that drove its construction.
// The RAW string (not the canonical form) is deliberate: two spellings
// of the same workload miss each other, which only costs a rebuild —
// never a wrong bundle.
type workloadKey struct {
	spec string
	seed uint64
}

// WorkloadCache memoizes workload construction (dataset + model
// synthesis) across cells that share a workload spec and seed — the
// expensive half of compiling a cell, and pure waste to repeat when a
// scenariod worker receives a run of affine cells (same workload+seed,
// different rules/attacks). Reuse cannot affect results: construction
// is deterministic in (spec, seed), distsgd.Run clones the model
// before training, and datasets are stateless sample streams, so a
// cached bundle and a fresh one produce byte-identical Results.
//
// The cache is a bounded LRU, safe for concurrent use. Concurrent
// misses on one key may build the bundle more than once; both builds
// being identical, last-in wins harmlessly.
type WorkloadCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[workloadKey]*list.Element
	order    *list.List // front = most recently used
	hits     int
	misses   int
}

// cacheEntry is one LRU slot: the key (for eviction) plus the bundle.
type cacheEntry struct {
	key workloadKey
	wl  *workload.Workload
}

// NewWorkloadCache builds a cache holding up to capacity workload
// bundles (0 or negative means DefaultWorkloadCacheSize).
func NewWorkloadCache(capacity int) *WorkloadCache {
	if capacity <= 0 {
		capacity = DefaultWorkloadCacheSize
	}
	return &WorkloadCache{
		capacity: capacity,
		entries:  make(map[workloadKey]*list.Element),
		order:    list.New(),
	}
}

// workload returns the cell's workload bundle, building and caching it
// on a miss.
func (c *WorkloadCache) workload(cell Spec) (*workload.Workload, error) {
	key := workloadKey{spec: cell.Workload, seed: cell.Seed}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		wl := el.Value.(*cacheEntry).wl
		c.mu.Unlock()
		return wl, nil
	}
	c.misses++
	c.mu.Unlock()

	wl, err := cell.buildWorkload()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, wl: wl})
		for c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	return wl, nil
}

// ComputeCell compiles and trains one cell like the package-level
// ComputeCell, but reuses the cached workload bundle when the cell's
// (workload spec, seed) pair was built before. Results are
// byte-identical to uncached computation — see the type comment.
func (c *WorkloadCache) ComputeCell(cell Spec) (*distsgd.Result, error) {
	wl, err := c.workload(cell)
	if err != nil {
		return nil, err
	}
	return distsgd.Run(cell.configWith(wl))
}

// Stats reports cache hits and misses since construction — the
// observability hook worker affinity is judged by.
func (c *WorkloadCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// RunCellWith executes one cell through the store protocol with a
// caller-supplied compute function standing in for local training: it
// consults the store, invokes compute on a miss (through the store's
// single-flight when available, so concurrent identical cells collapse
// to one compute) and writes the result through. It is the shared
// machinery between local execution (RunCell) and the scenariod
// coordinator, whose compute dispatches the cell to a worker fleet.
func RunCellWith(st ResultStore, index int, cell Spec, compute func() (*distsgd.Result, error)) CellResult {
	cr := CellResult{Index: index, Spec: cell}
	if sf, ok := st.(SingleFlighter); ok {
		cr.Result, cr.Cached, cr.StoreErr, cr.Err = sf.DoCell(cell, compute)
		return cr
	}
	if st != nil {
		if res, ok := st.Lookup(cell); ok {
			cr.Result = res
			cr.Cached = true
			return cr
		}
	}
	cr.Result, cr.Err = compute()
	if cr.Err == nil && st != nil {
		cr.StoreErr = st.Save(cell, cr.Result)
	}
	return cr
}
