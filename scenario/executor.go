package scenario

import (
	"krum/distsgd"
)

// CellExecutor runs one matrix cell and returns its outcome. It is the
// seam that lets a Runner (and the krum-scenariod service) execute
// cells somewhere other than the calling process: the default
// LocalExecutor compiles and trains in-process, while the scenariod
// coordinator's executor dispatches cells over HTTP to a worker fleet.
// Implementations must be safe for concurrent use (Runner calls
// ExecuteCell from multiple goroutines) and must preserve the cell
// purity contract: the returned Result depends only on the Spec, so
// local and remote execution of one cell are byte-identical under
// distsgd.Result's stable JSON encoding.
type CellExecutor interface {
	// ExecuteCell runs cell and returns its CellResult with Index set to
	// index (the position the caller will slot the result into).
	ExecuteCell(index int, cell Spec) CellResult
}

// LocalExecutor is the default CellExecutor: it consults the store,
// compiles the cell and trains it in-process — exactly the path
// RunCell implements. The zero value (nil Store) runs every cell cold.
type LocalExecutor struct {
	// Store, when non-nil, is consulted before computing and written
	// through after (see Runner.Store for the full contract).
	Store ResultStore
}

// ExecuteCell implements CellExecutor via RunCell.
func (e LocalExecutor) ExecuteCell(index int, cell Spec) CellResult {
	return RunCell(e.Store, index, cell)
}

// SingleFlighter is an optional ResultStore extension (implemented by
// scenario/store's Store): DoCell collapses concurrent executions of
// identical cell specs into one compute — when several callers submit
// the same key while no result is stored yet, exactly one runs compute
// and the rest wait for its outcome. RunCellWith routes through it
// automatically, so any Runner or service sharing a single-flight
// store deduplicates in-flight work across goroutines, matrices and
// (via the scenariod coordinator) worker processes.
type SingleFlighter interface {
	// DoCell returns the cell's result, computing it via compute at most
	// once per key across concurrent callers. shared reports that the
	// result arrived without invoking compute in this call (a store hit
	// or another caller's in-flight execution); storeErr is a failed
	// write-through (the result is still valid); runErr is compute's
	// failure, propagated to every waiter.
	DoCell(spec Spec, compute func() (*distsgd.Result, error)) (res *distsgd.Result, shared bool, storeErr, runErr error)
}

// ComputeCell compiles and trains one cell in-process, ignoring any
// store — the miss path of local execution, and the compute function a
// scenariod worker runs for dispatched cells.
func ComputeCell(cell Spec) (*distsgd.Result, error) {
	cfg, err := cell.Compile()
	if err != nil {
		return nil, err
	}
	return distsgd.Run(cfg)
}

// RunCellWith executes one cell through the store protocol with a
// caller-supplied compute function standing in for local training: it
// consults the store, invokes compute on a miss (through the store's
// single-flight when available, so concurrent identical cells collapse
// to one compute) and writes the result through. It is the shared
// machinery between local execution (RunCell) and the scenariod
// coordinator, whose compute dispatches the cell to a worker fleet.
func RunCellWith(st ResultStore, index int, cell Spec, compute func() (*distsgd.Result, error)) CellResult {
	cr := CellResult{Index: index, Spec: cell}
	if sf, ok := st.(SingleFlighter); ok {
		cr.Result, cr.Cached, cr.StoreErr, cr.Err = sf.DoCell(cell, compute)
		return cr
	}
	if st != nil {
		if res, ok := st.Lookup(cell); ok {
			cr.Result = res
			cr.Cached = true
			return cr
		}
	}
	cr.Result, cr.Err = compute()
	if cr.Err == nil && st != nil {
		cr.StoreErr = st.Save(cell, cr.Result)
	}
	return cr
}
