// Package scenario is the declarative experiment-definition API: a
// Spec names every axis of one training run as a registry spec string —
// aggregation rule (internal/core), attack (attack), learning-rate
// schedule (internal/sgd) and workload (workload) — plus the scalar
// shape (n, f, rounds, batch, seed). Specs marshal to/from JSON, so
// whole experiment grids live in config files; a Matrix expands
// cartesian products of spec axes into cells, and a Runner executes the
// cells across a bounded goroutine pool, streaming per-cell results.
//
// Because every cell is seeded explicitly and distsgd.Run is
// deterministic given its Config, a matrix produces identical results
// regardless of worker count or goroutine interleaving — concurrency is
// purely a wall-clock optimization, which is what lets the harness
// regenerate the paper's figures through the same Runner that serves
// ad-hoc JSON scenario files.
//
// That same determinism makes cells cacheable: every cell is a pure
// function of its Spec, so a Runner with a ResultStore (see
// scenario/store for the content-addressed persistent implementation)
// skips cells whose results are already known and writes fresh ones
// through — repeated and overlapping grids cost only their uncovered
// cells. The krum-scenariod service builds on the same pieces to serve
// many matrices concurrently over HTTP against one shared store.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"krum/attack"
	"krum/distsgd"
	"krum/internal/arrival"
	"krum/internal/core"
	"krum/internal/sgd"
	"krum/workload"
)

// ErrBadSpec is returned (wrapped) for structurally invalid scenario
// specs; axis-level failures wrap the owning registry's sentinel
// (core.ErrBadParameter, attack.ErrBadSpec, sgd.ErrBadSchedule,
// workload.ErrBadSpec) instead.
var ErrBadSpec = errors.New("scenario: bad spec")

// Spec declares one training run. All four experiment axes are registry
// spec strings; everything is serializable, comparable and
// reproducible from the struct alone.
type Spec struct {
	// Name optionally labels the cell in result tables; Matrix fills it
	// with a generated label when expanding grids.
	Name string `json:"name,omitempty"`
	// Workload is the workload registry spec, e.g.
	// "mnist(size=10,hidden=16)".
	Workload string `json:"workload"`
	// Rule is the aggregation rule registry spec, e.g. "krum" or
	// "multikrum(f=4,m=8)"; parameters omitted here default to the
	// cluster shape (N, F).
	Rule string `json:"rule"`
	// Attack is the attack registry spec, e.g. "gaussian(sigma=200)";
	// empty means no attack.
	Attack string `json:"attack,omitempty"`
	// Schedule is the learning-rate schedule registry spec, e.g.
	// "inverset(gamma=0.5,power=0.75,t0=200)".
	Schedule string `json:"schedule"`
	// N is the total number of workers; F of them are Byzantine.
	N int `json:"n"`
	// F is the number of Byzantine workers (0 ≤ F < N).
	F int `json:"f"`
	// Rounds is the number of synchronous rounds T.
	Rounds int `json:"rounds"`
	// BatchSize is each correct worker's mini-batch size.
	BatchSize int `json:"batch_size"`
	// Seed drives every random choice in the run (including workload
	// construction).
	Seed uint64 `json:"seed"`
	// EvalEvery evaluates held-out metrics every that many rounds; 0
	// disables evaluation.
	EvalEvery int `json:"eval_every,omitempty"`
	// EvalBatch is the held-out evaluation sample size; 0 means the
	// distsgd default.
	EvalBatch int `json:"eval_batch,omitempty"`
	// TrackSelection additionally records Byzantine-selection
	// histograms (see distsgd.Config.TrackSelection).
	TrackSelection bool `json:"track_selection,omitempty"`
	// Parallel is the per-run distance-matrix goroutine count
	// (0 = serial); cell-level concurrency belongs to Runner.Workers.
	Parallel int `json:"parallel,omitempty"`
	// Incremental enables the cross-round incremental distance cache
	// (see distsgd.Config.Incremental). Results are bit-identical
	// either way; the flag trades memory for skipped recomputation when
	// proposals replay across rounds.
	Incremental bool `json:"incremental,omitempty"`
	// Screened enables norm + triangle-inequality screened selection
	// (see distsgd.Config.Screened). Results are bit-identical either
	// way; the flag prunes distance work at large n.
	Screened bool `json:"screened,omitempty"`
	// Arrival is the arrival-process registry spec selecting the
	// bounded-staleness asynchronous mode (see
	// distsgd.Config.ArrivalSpec), e.g. "bounded(tau=3)" or
	// "bernoulli(p=0.5,tau=8)". Empty means synchronous rounds; "sync"
	// and every tau=0 spec are byte-identical to empty and share its
	// store key (the store canonicalizes them away), while genuinely
	// asynchronous specs are part of the cell's identity and can never
	// alias a synchronous cell.
	Arrival string `json:"arrival,omitempty"`
}

// Label returns a compact human-readable cell identity.
func (s Spec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	atk := s.Attack
	if atk == "" {
		atk = "none"
	}
	parts := make([]string, 0, 6)
	if s.Workload != "" {
		parts = append(parts, s.Workload)
	}
	if s.Rule != "" {
		parts = append(parts, "rule="+s.Rule)
	}
	parts = append(parts, "attack="+atk)
	if s.Arrival != "" {
		parts = append(parts, "arrival="+s.Arrival)
	}
	parts = append(parts, fmt.Sprintf("f=%d", s.F), fmt.Sprintf("seed=%d", s.Seed))
	return strings.Join(parts, " ")
}

// Validate eagerly checks the scalar shape and parses all four axis
// specs, so config files fail fast with registry-grade error messages
// instead of mid-matrix.
func (s Spec) Validate() error {
	if s.N < 1 || s.F < 0 || s.F >= s.N {
		return fmt.Errorf("n = %d, f = %d (need 0 ≤ f < n): %w", s.N, s.F, ErrBadSpec)
	}
	if s.Rounds < 1 {
		return fmt.Errorf("rounds = %d: %w", s.Rounds, ErrBadSpec)
	}
	if s.BatchSize < 1 {
		return fmt.Errorf("batch_size = %d: %w", s.BatchSize, ErrBadSpec)
	}
	if s.Rule == "" {
		return fmt.Errorf("empty rule spec: %w", ErrBadSpec)
	}
	if _, err := core.ParseRuleIn(core.SpecContext{N: s.N, F: s.F}, s.Rule); err != nil {
		return err
	}
	if s.Attack != "" {
		if _, err := attack.Parse(s.Attack); err != nil {
			return err
		}
	}
	if s.Schedule == "" {
		return fmt.Errorf("empty schedule spec: %w", ErrBadSpec)
	}
	if _, err := sgd.ParseSchedule(s.Schedule); err != nil {
		return err
	}
	if s.Workload == "" {
		return fmt.Errorf("empty workload spec: %w", ErrBadSpec)
	}
	if _, err := workload.Parse(workload.SpecContext{Seed: s.Seed}, s.Workload); err != nil {
		return err
	}
	if s.Arrival != "" {
		if _, err := arrival.Parse(s.Arrival); err != nil {
			return err
		}
	}
	return nil
}

// Compile materializes the spec into a distsgd.Config: the workload is
// built through its registry (seeded by Spec.Seed) and the rule,
// attack and schedule specs are handed to distsgd.Run, which constructs
// them with the cluster shape as defaults.
func (s Spec) Compile() (distsgd.Config, error) {
	wl, err := s.buildWorkload()
	if err != nil {
		return distsgd.Config{}, err
	}
	return s.configWith(wl), nil
}

// buildWorkload constructs the spec's workload bundle through the
// registry, seeded by Spec.Seed — the expensive half of Compile, and
// the part a WorkloadCache memoizes.
func (s Spec) buildWorkload() (*workload.Workload, error) {
	if s.Workload == "" {
		return nil, fmt.Errorf("empty workload spec: %w", ErrBadSpec)
	}
	return workload.Parse(workload.SpecContext{Seed: s.Seed}, s.Workload)
}

// configWith assembles the distsgd.Config around an already-built
// workload bundle. Sharing a bundle across cells is sound because
// training never mutates it: distsgd.Run clones the model before
// touching it and datasets are stateless sample streams (all
// randomness comes from caller-provided RNGs).
func (s Spec) configWith(wl *workload.Workload) distsgd.Config {
	return distsgd.Config{
		Model:          wl.Model,
		Dataset:        wl.Dataset,
		RuleSpec:       s.Rule,
		AttackSpec:     s.Attack,
		ScheduleSpec:   s.Schedule,
		N:              s.N,
		F:              s.F,
		Rounds:         s.Rounds,
		BatchSize:      s.BatchSize,
		Seed:           s.Seed,
		EvalEvery:      s.EvalEvery,
		EvalBatch:      s.EvalBatch,
		TrackSelection: s.TrackSelection,
		Parallel:       s.Parallel,
		Incremental:    s.Incremental,
		Screened:       s.Screened,
		ArrivalSpec:    s.Arrival,
	}
}

// MarshalIndent renders the spec as the JSON accepted by config files.
func (s Spec) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSpecJSON decodes one Spec from JSON, rejecting unknown fields so
// config-file typos surface as errors instead of silently-ignored keys.
func ParseSpecJSON(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("decoding scenario spec: %w: %w", err, ErrBadSpec)
	}
	return s, nil
}
