package scenario_test

import (
	"fmt"

	"krum/scenario"
	"krum/scenario/store"
)

// ExampleParseMatrixJSON shows the JSON form of an experiment grid —
// the same schema krum-experiments -config and the krum-scenariod
// POST /matrices endpoint accept — and its deterministic expansion.
func ExampleParseMatrixJSON() {
	m, err := scenario.ParseMatrixJSON([]byte(`{
		"base": {
			"workload": "gmm(k=3,dim=6,radius=4,sigma=0.5)",
			"rule": "krum",
			"schedule": "inverset(gamma=0.5,power=0.75,t0=50)",
			"n": 9, "f": 2, "rounds": 10, "batch_size": 8, "seed": 11
		},
		"rules": ["krum", "average"],
		"attacks": ["none", "gaussian(sigma=200)"]
	}`))
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	cells := m.Cells()
	fmt.Println("cells:", m.Size())
	fmt.Println("first:", cells[0].Label())
	fmt.Println("last: ", cells[len(cells)-1].Label())
	// Output:
	// cells: 4
	// first: gmm(k=3,dim=6,radius=4,sigma=0.5) rule=krum attack=none f=2 seed=11
	// last:  gmm(k=3,dim=6,radius=4,sigma=0.5) rule=average attack=gaussian(sigma=200) f=2 seed=11
}

// ExampleRunner_Run_store runs the same grid twice through a
// content-addressed result store: the first pass computes and persists
// every cell, the second is served entirely from the store — no
// training, no distance-matrix work — with byte-identical results.
// File-backed stores (store.Open) extend the same behaviour across
// process restarts.
func ExampleRunner_Run_store() {
	m := scenario.Matrix{
		Base: scenario.Spec{
			Workload:  "gmm(k=3,dim=6,radius=4,sigma=0.5)",
			Rule:      "krum",
			Schedule:  "inverset(gamma=0.5,power=0.75,t0=50)",
			N:         9,
			F:         2,
			Rounds:    8,
			BatchSize: 8,
			Seed:      11,
		},
		Rules: []string{"krum", "average"},
	}

	st := store.NewMemory() // store.Open("cells.jsonl") to persist
	runner := &scenario.Runner{Workers: 2, Store: st}

	cold, err := runner.Run(m)
	if err != nil {
		fmt.Println("cold:", err)
		return
	}
	warm, err := runner.Run(m)
	if err != nil {
		fmt.Println("warm:", err)
		return
	}

	cachedCold, cachedWarm := 0, 0
	for i := range cold {
		if cold[i].Cached {
			cachedCold++
		}
		if warm[i].Cached {
			cachedWarm++
		}
	}
	stats := st.Stats()
	fmt.Printf("cold run: %d/%d cells cached\n", cachedCold, len(cold))
	fmt.Printf("warm run: %d/%d cells cached\n", cachedWarm, len(warm))
	fmt.Printf("store: %d entries, %d hits, %d misses\n", stats.Entries, stats.Hits, stats.Misses)
	// Output:
	// cold run: 0/2 cells cached
	// warm run: 2/2 cells cached
	// store: 2 entries, 2 hits, 2 misses
}
