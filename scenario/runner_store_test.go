package scenario_test

// Runner ↔ ResultStore integration: the warm-path acceptance criteria
// (zero distance-matrix work for cached cells, byte-identical results)
// and the RunCells ordering/error-aggregation guarantee with store
// hits interleaved with live runs. These live in an external test
// package because scenario/store imports scenario.

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"krum/distsgd"
	"krum/internal/vec"
	"krum/scenario"
	"krum/scenario/store"
)

// storeSpec is a seconds-scale base cell for the store tests.
func storeSpec() scenario.Spec {
	return scenario.Spec{
		Workload:  "gmm(k=3,dim=6,radius=4,sigma=0.5)",
		Rule:      "krum",
		Attack:    "gaussian(sigma=200)",
		Schedule:  "inverset(gamma=0.5,power=0.75,t0=50)",
		N:         9,
		F:         2,
		Rounds:    10,
		BatchSize: 8,
		Seed:      11,
		EvalEvery: 5,
		EvalBatch: 64,
	}
}

// storeMatrix is a small rules × seeds grid over storeSpec.
func storeMatrix() scenario.Matrix {
	return scenario.Matrix{
		Base:  storeSpec(),
		Rules: []string{"krum", "average"},
		Seeds: []uint64{1, 2},
	}
}

func encodeResult(t *testing.T, r *distsgd.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunnerWarmStoreZeroRebuildsByteIdentical is the tentpole
// acceptance criterion at the Runner level: re-running the same matrix
// through a warm store performs zero distance-matrix rebuilds (and
// zero incremental row updates) for the cached cells, and every result
// is byte-identical to the cold run — at a different worker count, to
// pin that hits preserve the determinism contract too.
func TestRunnerWarmStoreZeroRebuildsByteIdentical(t *testing.T) {
	st := store.NewMemory()
	m := storeMatrix()

	cold, err := (&scenario.Runner{Workers: 1, Store: st}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range cold {
		if cr.Cached {
			t.Fatalf("cold run cell %d reported cached", cr.Index)
		}
	}

	builds := vec.MatrixBuildCount()
	rows := vec.MatrixRowUpdateCount()
	warm, err := (&scenario.Runner{Workers: 4, Store: st}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.MatrixBuildCount() - builds; d != 0 {
		t.Errorf("warm matrix built %d distance matrices, want 0", d)
	}
	if d := vec.MatrixRowUpdateCount() - rows; d != 0 {
		t.Errorf("warm matrix performed %d row updates, want 0", d)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm run returned %d cells, want %d", len(warm), len(cold))
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Errorf("warm cell %d not served from store", i)
		}
		if warm[i].Index != i || cold[i].Index != i {
			t.Errorf("cell %d carries index %d/%d; want positional indexing", i, cold[i].Index, warm[i].Index)
		}
		if encodeResult(t, warm[i].Result) != encodeResult(t, cold[i].Result) {
			t.Errorf("cell %d (%s): warm result not byte-identical to cold", i, warm[i].Spec.Label())
		}
	}
	if hits := st.Stats().Hits; hits != len(warm) {
		t.Errorf("store hits = %d, want %d", hits, len(warm))
	}
}

// TestRunnerOverlappingGridsShareCells runs two different matrices
// whose expansions overlap and checks the second only computes the
// cells the first did not cover — the "-exp all after -exp table1"
// economics.
func TestRunnerOverlappingGridsShareCells(t *testing.T) {
	st := store.NewMemory()
	small := scenario.Matrix{Base: storeSpec(), Rules: []string{"krum"}, Seeds: []uint64{1, 2}}
	big := scenario.Matrix{Base: storeSpec(), Rules: []string{"krum", "average"}, Seeds: []uint64{1, 2}}

	if _, err := (&scenario.Runner{Store: st}).Run(small); err != nil {
		t.Fatal(err)
	}
	results, err := (&scenario.Runner{Store: st}).Run(big)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, cr := range results {
		if cr.Cached {
			cached++
		}
	}
	if cached != small.Size() {
		t.Errorf("big grid served %d cells from store, want the %d overlapping ones", cached, small.Size())
	}
}

// TestRunCellsOrderingAndErrorAggregation pins the documented
// guarantee: results[i].Index == i for cells[i] even when store hits,
// live runs and failures interleave; the error joins per-cell failures
// in index order while the full slice is still returned.
func TestRunCellsOrderingAndErrorAggregation(t *testing.T) {
	st := store.NewMemory()
	good := storeSpec()
	// Pre-warm only the first cell, so the run mixes a hit, a failure
	// and a live computation.
	if cr := scenario.RunCell(st, 0, good); cr.Err != nil {
		t.Fatal(cr.Err)
	}
	bad := storeSpec()
	bad.Rule = "no-such-rule"
	live := storeSpec()
	live.Seed = 77

	cells := []scenario.Spec{good, bad, live}
	results, err := (&scenario.Runner{Workers: 3, Store: st}).RunCells(cells)
	if err == nil {
		t.Fatal("want aggregate error for the failing cell")
	}
	if !strings.Contains(err.Error(), "cell 1") {
		t.Errorf("error does not identify the failing cell by index: %v", err)
	}
	if len(results) != len(cells) {
		t.Fatalf("returned %d results, want %d even on error", len(results), len(cells))
	}
	for i, cr := range results {
		if cr.Index != i {
			t.Errorf("results[%d].Index = %d; want positional indexing", i, cr.Index)
		}
		if cr.Spec.Label() != cells[i].Label() {
			t.Errorf("results[%d] holds spec %q, want %q", i, cr.Spec.Label(), cells[i].Label())
		}
	}
	if !results[0].Cached || results[0].Err != nil {
		t.Errorf("cell 0: cached=%v err=%v, want a clean store hit", results[0].Cached, results[0].Err)
	}
	if results[1].Err == nil || results[1].Result != nil {
		t.Error("cell 1: want a failure with nil result")
	}
	if results[2].Err != nil || results[2].Cached {
		t.Errorf("cell 2: err=%v cached=%v, want a clean live run", results[2].Err, results[2].Cached)
	}
}

// failingSaveStore misses every lookup and fails every save.
type failingSaveStore struct{}

func (failingSaveStore) Lookup(scenario.Spec) (*distsgd.Result, bool) { return nil, false }
func (failingSaveStore) Save(scenario.Spec, *distsgd.Result) error {
	return fmt.Errorf("disk full")
}

// TestRunCellsSurfacesStoreErrors checks that a failed write-through
// keeps the computed result but is folded into the aggregate error.
func TestRunCellsSurfacesStoreErrors(t *testing.T) {
	cells := []scenario.Spec{storeSpec()}
	results, err := (&scenario.Runner{Store: failingSaveStore{}}).RunCells(cells)
	if err == nil || !strings.Contains(err.Error(), "storing result") {
		t.Fatalf("aggregate error = %v, want a store write-through failure", err)
	}
	if results[0].Err != nil {
		t.Fatalf("cell error = %v, want nil (only persistence failed)", results[0].Err)
	}
	if results[0].Result == nil || results[0].StoreErr == nil {
		t.Fatal("want computed result with a recorded StoreErr")
	}
	if errors.Is(results[0].StoreErr, results[0].Err) && results[0].Err != nil {
		t.Fatal("StoreErr must stay separate from the cell error")
	}
}
