package scenario

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"krum/internal/arrival"
)

// encodeCell renders a cell result in the stable store encoding — the
// level at which the sync≡async(τ=0) differential is asserted.
func encodeCell(t *testing.T, cr CellResult) string {
	t.Helper()
	if cr.Err != nil {
		t.Fatal(cr.Err)
	}
	b, err := json.Marshal(cr.Result)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunnerArrivalSyncByteIdentical is the Runner level of the
// tentpole differential: a matrix with arrival "" (legacy), "sync" and
// "bounded(tau=0)" produces byte-identical results cell for cell.
func TestRunnerArrivalSyncByteIdentical(t *testing.T) {
	base := quickSpec()
	base.TrackSelection = true
	runGrid := func(arr string) []CellResult {
		b := base
		b.Arrival = arr
		m := Matrix{
			Base:  b,
			Rules: []string{"krum", "average"},
			Seeds: []uint64{5, 6},
		}
		out, err := (&Runner{Workers: 4}).Run(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	legacy := runGrid("")
	for _, arr := range []string{"sync", "bounded(tau=0)"} {
		got := runGrid(arr)
		if len(got) != len(legacy) {
			t.Fatalf("arrival %q: %d cells, want %d", arr, len(got), len(legacy))
		}
		for i := range legacy {
			if encodeCell(t, got[i]) != encodeCell(t, legacy[i]) {
				t.Errorf("arrival %q cell %d (%s): bytes differ from the legacy synchronous run",
					arr, i, legacy[i].Spec.Label())
			}
		}
	}
}

// TestRunnerAsyncDeterministicAcrossWorkerCounts extends the runner's
// core determinism contract to async cells: an arrival-sweeping matrix
// yields identical results on 1 and 8 workers — the arrival trace is a
// pure function of the cell spec, untouched by goroutine interleaving.
func TestRunnerAsyncDeterministicAcrossWorkerCounts(t *testing.T) {
	base := quickSpec()
	base.Incremental = true
	m := Matrix{
		Base:     base,
		Rules:    []string{"krum", "average"},
		Arrivals: []string{"sync", "bounded(tau=2)", "bernoulli(p=0.5,tau=4)"},
		Seeds:    []uint64{5, 6},
	}
	serial, err := (&Runner{Workers: 1}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 8}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) != m.Size() {
		t.Fatalf("result counts: %d vs %d (want %d)", len(serial), len(parallel), m.Size())
	}
	for i := range serial {
		if encodeCell(t, serial[i]) != encodeCell(t, parallel[i]) {
			t.Errorf("cell %d (%s): bytes differ across worker counts", i, serial[i].Spec.Label())
		}
	}
}

// TestMatrixArrivalsAxis pins the expansion: the arrivals axis sits
// between attacks and fs, every cell carries its arrival value, and
// Size accounts for the new axis.
func TestMatrixArrivalsAxis(t *testing.T) {
	m := Matrix{
		Base:     quickSpec(),
		Rules:    []string{"krum", "average"},
		Arrivals: []string{"sync", "bounded(tau=3)"},
		Seeds:    []uint64{1, 2},
	}
	cells := m.Cells()
	if len(cells) != 8 || m.Size() != 8 {
		t.Fatalf("expanded %d cells (Size %d), want 8", len(cells), m.Size())
	}
	// rules × arrivals × seeds, seeds fastest: index = ((ir*2)+iarr)*2+is.
	for i, cell := range cells {
		wantArrival := m.Arrivals[(i/2)%2]
		if cell.Arrival != wantArrival {
			t.Errorf("cell %d: arrival %q, want %q", i, cell.Arrival, wantArrival)
		}
		if cell.Arrival != "" && !contains(cell.Name, "arrival="+cell.Arrival) {
			t.Errorf("cell %d: label %q does not name its arrival", i, cell.Name)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMatrixDeriveSeedsBackCompat pins the seed-derivation contract
// around the new axis: without an Arrivals axis the derivation is the
// original four-coordinate hash (pre-arrival grids keep their stored
// results), and with the axis declared the arrival coordinate
// decorrelates otherwise-identical cells.
func TestMatrixDeriveSeedsBackCompat(t *testing.T) {
	base := quickSpec()
	m := Matrix{
		Base:        base,
		Rules:       []string{"krum", "average"},
		Fs:          []int{0, 2},
		Seeds:       []uint64{5},
		DeriveSeeds: true,
	}
	// Replicate the documented pre-arrival derivation: SplitMix64 steps
	// over (workload, rule, attack, f) coordinates, seeds excluded.
	derive := func(seed uint64, coords ...int) uint64 {
		state := seed
		for _, c := range coords {
			state += 0x9E3779B97F4A7C15 * (uint64(c) + 1)
			z := state
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			state = z ^ (z >> 31)
		}
		return state
	}
	cells := m.Cells()
	idx := 0
	for ir := range m.Rules {
		for ifv := range m.Fs {
			want := derive(5, 0, ir, 0, ifv)
			if cells[idx].Seed != want {
				t.Errorf("cell %d: derived seed %d, want pre-arrival derivation %d", idx, cells[idx].Seed, want)
			}
			idx++
		}
	}

	withAxis := m
	withAxis.Arrivals = []string{"sync", "bounded(tau=3)"}
	axisCells := withAxis.Cells()
	seeds := map[uint64]bool{}
	for _, c := range axisCells {
		seeds[c.Seed] = true
	}
	if len(seeds) != len(axisCells) {
		t.Errorf("arrival coordinate failed to decorrelate: %d distinct seeds over %d cells", len(seeds), len(axisCells))
	}
}

// TestSpecArrivalJSONRoundTrip: the arrival field survives the config
// file round trip and stays omitted when empty (key stability).
func TestSpecArrivalJSONRoundTrip(t *testing.T) {
	s := quickSpec()
	s.Arrival = "bernoulli(p=0.5,tau=8)"
	data, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpecJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", s, back)
	}
	s.Arrival = ""
	plain, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if contains(string(plain), "arrival") {
		t.Errorf("empty arrival serialized: %s", plain)
	}
}

// TestValidateArrival: malformed arrival specs fail Validate with the
// registry sentinel, before any training starts.
func TestValidateArrival(t *testing.T) {
	s := quickSpec()
	s.Arrival = "bounded(tau=-1)"
	if err := s.Validate(); !errors.Is(err, arrival.ErrBadArrival) {
		t.Errorf("error = %v, want ErrBadArrival", err)
	}
	s.Arrival = "bounded(tau=4)"
	if err := s.Validate(); err != nil {
		t.Errorf("valid arrival rejected: %v", err)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
