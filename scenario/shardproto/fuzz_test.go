package shardproto

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeMessage runs every protocol decoder over arbitrary bytes:
// no input may panic, and any input a decoder accepts must re-encode
// and re-decode to the same message (decode is a retraction of
// encode, so a coordinator and a worker can never disagree about an
// accepted message's meaning). The committed corpus seeds valid
// messages of each type plus truncations and hostile shapes.
func FuzzDecodeMessage(f *testing.F) {
	for _, seed := range []string{
		`{"slots": 4}`,
		`{"slots": 4, "version": "krum-store-v1"}`,
		`{"slots": 4, "version": "krum-store-v2", "kernel": "fma4"}`,
		`{"slots": 4, "version": "krum-store-v2", "kernel": ""}`,
		`{"worker_id": "w1", "token": "c0ffee", "lease_millis": 10000}`,
		`{"worker_id": "w1", "token": "c0ffee"}`,
		`{"worker_id": "w1"}`,
		`{}`,
		`{"task": {"id": "t1", "spec": {"workload": "gmm(k=3,dim=6)", "rule": "krum", "schedule": "const(gamma=0.1)", "n": 9, "f": 2, "rounds": 8, "batch_size": 8, "seed": 7}}}`,
		`{"task": {"id": "t2", "spec": {"workload": "gmm(k=3,dim=6)", "rule": "krum", "schedule": "const(gamma=0.1)", "n": 9, "f": 2, "rounds": 8, "batch_size": 8, "seed": 7, "incremental": true, "screened": true}}}`,
		`{"task": {"id": "t3", "spec": {"workload": "gmm(k=3,dim=6)", "rule": "krum", "schedule": "const(gamma=0.1)", "n": 9, "f": 2, "rounds": 8, "batch_size": 8, "seed": 7, "screened": false}}}`,
		`{"task": {"id": "t4", "spec": {"workload": "gmm(k=3,dim=6)", "rule": "krum", "schedule": "const(gamma=0.1)", "n": 9, "f": 2, "rounds": 8, "batch_size": 8, "seed": 7, "incremental": true, "arrival": "bounded(tau=3)"}}}`,
		`{"worker_id": "w1", "token": "c0ffee", "max_tasks": 8}`,
		`{"worker_id": "w1", "token": "c0ffee", "max_tasks": -1}`,
		`{"tasks": [{"id": "t1", "spec": {"rule": "krum", "n": 9, "f": 2}}, {"id": "t2", "spec": {"rule": "krum", "n": 9, "f": 2}}]}`,
		`{"task": {"id": "t1", "spec": {"rule": "krum", "n": 9, "f": 2}}, "tasks": [{"id": "t2", "spec": {"rule": "krum", "n": 9, "f": 2}}]}`,
		`{"worker_id": "w1", "token": "c0ffee", "task_id": "t1"}`,
		`{"worker_id": "w1", "token": "c0ffee", "task_ids": ["t1", "t2", "t3"]}`,
		`{"worker_id": "w1", "token": "c0ffee", "task_ids": [""]}`,
		`{"worker_id": "w1", "token": "c0ffee", "task_id": "t1", "result": {"history": []}}`,
		`{"worker_id": "w1", "token": "c0ffee", "task_id": "t1", "error": "bad spec"}`,
		`{"worker_id": "w`,
		`{"worker_id": "w1", "admin": true}`,
		`[1,2,3]`,
		`null`,
		"\x00\xff\xfe",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeJoinRequest(data); err == nil {
			reDecode(t, m, func(b []byte) (JoinRequest, error) { return DecodeJoinRequest(b) })
		}
		if m, err := DecodeJoinResponse(data); err == nil {
			reDecode(t, m, func(b []byte) (JoinResponse, error) { return DecodeJoinResponse(b) })
		}
		if m, err := DecodePollRequest(data); err == nil {
			reDecode(t, m, func(b []byte) (PollRequest, error) { return DecodePollRequest(b) })
		}
		if m, err := DecodePollResponse(data); err == nil {
			reDecode(t, m, func(b []byte) (PollResponse, error) { return DecodePollResponse(b) })
		}
		if m, err := DecodeHeartbeatRequest(data); err == nil {
			reDecode(t, m, func(b []byte) (HeartbeatRequest, error) { return DecodeHeartbeatRequest(b) })
		}
		if m, err := DecodeResultRequest(data); err == nil {
			reDecode(t, m, func(b []byte) (ResultRequest, error) { return DecodeResultRequest(b) })
		}
	})
}

// reDecode asserts the accepted message survives encode → decode →
// encode byte-stably (RawMessage fields make reflect.DeepEqual too
// strict about insignificant whitespace, so stability is asserted on
// the re-encoded bytes).
func reDecode[T any](t *testing.T, m T, decode func([]byte) (T, error)) {
	t.Helper()
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("re-encoding accepted message %+v: %v", m, err)
	}
	again, err := decode(blob)
	if err != nil {
		t.Fatalf("re-decoding %s: %v", blob, err)
	}
	blob2, err := json.Marshal(again)
	if err != nil {
		t.Fatalf("re-encoding twice: %v", err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("unstable round trip: %s != %s", blob, blob2)
	}
}
