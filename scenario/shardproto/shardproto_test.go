package shardproto

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"krum/scenario"
)

// sampleSpec is a structurally-plausible cell for round-trip tests.
func sampleSpec() scenario.Spec {
	return scenario.Spec{
		Workload:  "gmm(k=3,dim=6)",
		Rule:      "krum",
		Attack:    "gaussian(sigma=200)",
		Schedule:  "const(gamma=0.1)",
		N:         9,
		F:         2,
		Rounds:    8,
		BatchSize: 8,
		Seed:      7,
	}
}

// TestDecodeRoundTrips pins Encode∘Decode identity for every message
// type: what one side marshals, the other side's strict decoder
// accepts and reproduces exactly.
func TestDecodeRoundTrips(t *testing.T) {
	task := &Task{ID: "t1", Spec: sampleSpec()}
	for name, tc := range map[string]struct {
		msg    any
		decode func([]byte) (any, error)
	}{
		"join request": {JoinRequest{Slots: 4, Version: "krum-store-v1", Kernel: "pair2"}, func(b []byte) (any, error) { return DecodeJoinRequest(b) }},
		"join response": {JoinResponse{WorkerID: "w1", Token: "c0ffee", LeaseMillis: 10_000},
			func(b []byte) (any, error) { return DecodeJoinResponse(b) }},
		"poll request":        {PollRequest{WorkerID: "w1", Token: "c0ffee"}, func(b []byte) (any, error) { return DecodePollRequest(b) }},
		"poll response empty": {PollResponse{}, func(b []byte) (any, error) { return DecodePollResponse(b) }},
		"poll response task":  {PollResponse{Task: task}, func(b []byte) (any, error) { return DecodePollResponse(b) }},
		"heartbeat": {HeartbeatRequest{WorkerID: "w1", Token: "c0ffee", TaskID: "t1"},
			func(b []byte) (any, error) { return DecodeHeartbeatRequest(b) }},
		"result ok": {ResultRequest{WorkerID: "w1", Token: "c0ffee", TaskID: "t1", Result: json.RawMessage(`{"history":[]}`)},
			func(b []byte) (any, error) { return DecodeResultRequest(b) }},
		"result error": {ResultRequest{WorkerID: "w1", Token: "c0ffee", TaskID: "t1", Error: "bad spec"},
			func(b []byte) (any, error) { return DecodeResultRequest(b) }},
	} {
		blob, err := json.Marshal(tc.msg)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		got, err := tc.decode(blob)
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.msg) {
			t.Errorf("%s: round trip %+v != %+v", name, got, tc.msg)
		}
	}
}

// TestDecodeRejectsHostileInput pins the trust boundary: malformed,
// truncated and invariant-violating payloads error with ErrBadMessage.
func TestDecodeRejectsHostileInput(t *testing.T) {
	long := strings.Repeat("x", MaxIDBytes+1)
	for name, tc := range map[string]struct {
		data   string
		decode func([]byte) error
	}{
		"truncated":        {`{"worker_id": "w`, func(b []byte) error { _, err := DecodePollRequest(b); return err }},
		"not json":         {`hello`, func(b []byte) error { _, err := DecodeJoinRequest(b); return err }},
		"empty":            {``, func(b []byte) error { _, err := DecodeJoinRequest(b); return err }},
		"unknown field":    {`{"worker_id": "w1", "token": "t", "admin": true}`, func(b []byte) error { _, err := DecodePollRequest(b); return err }},
		"trailing garbage": {`{"worker_id": "w1", "token": "t"} {"worker_id": "w2"}`, func(b []byte) error { _, err := DecodePollRequest(b); return err }},
		"wrong type":       {`{"worker_id": 7, "token": "t"}`, func(b []byte) error { _, err := DecodePollRequest(b); return err }},
		"empty worker id":  {`{"worker_id": "", "token": "t"}`, func(b []byte) error { _, err := DecodePollRequest(b); return err }},
		"missing token":    {`{"worker_id": "w1"}`, func(b []byte) error { _, err := DecodePollRequest(b); return err }},
		"oversized id":     {`{"worker_id": "` + long + `", "token": "t"}`, func(b []byte) error { _, err := DecodePollRequest(b); return err }},
		"negative slots":   {`{"slots": -1, "version": "v1"}`, func(b []byte) error { _, err := DecodeJoinRequest(b); return err }},
		"huge slots":       {`{"slots": 1000000, "version": "v1"}`, func(b []byte) error { _, err := DecodeJoinRequest(b); return err }},
		"missing version":  {`{"slots": 1}`, func(b []byte) error { _, err := DecodeJoinRequest(b); return err }},
		"missing kernel":   {`{"slots": 1, "version": "v1"}`, func(b []byte) error { _, err := DecodeJoinRequest(b); return err }},
		"oversized kernel": {`{"slots": 1, "version": "v1", "kernel": "` + long + `"}`, func(b []byte) error { _, err := DecodeJoinRequest(b); return err }},
		"zero lease":       {`{"worker_id": "w1", "token": "t", "lease_millis": 0}`, func(b []byte) error { _, err := DecodeJoinResponse(b); return err }},
		"grant sans token": {`{"worker_id": "w1", "lease_millis": 1000}`, func(b []byte) error { _, err := DecodeJoinResponse(b); return err }},
		"task without id":  {`{"task": {"spec": {}}}`, func(b []byte) error { _, err := DecodePollResponse(b); return err }},
		"result and error": {`{"worker_id": "w1", "token": "t", "task_id": "t1", "result": {}, "error": "x"}`, func(b []byte) error { _, err := DecodeResultRequest(b); return err }},
		"neither result nor error": {`{"worker_id": "w1", "token": "t", "task_id": "t1"}`,
			func(b []byte) error { _, err := DecodeResultRequest(b); return err }},
		"null result": {`{"worker_id": "w1", "token": "t", "task_id": "t1", "result": null}`,
			func(b []byte) error { _, err := DecodeResultRequest(b); return err }},
	} {
		err := tc.decode([]byte(tc.data))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: error %v does not wrap ErrBadMessage", name, err)
		}
	}
}

// TestReadBodyEnforcesCap pins the size bound every handler applies.
func TestReadBodyEnforcesCap(t *testing.T) {
	small := strings.NewReader(`{"slots": 1}`)
	data, err := ReadBody(small)
	if err != nil || string(data) != `{"slots": 1}` {
		t.Fatalf("small body: %q, %v", data, err)
	}
	huge := strings.NewReader(strings.Repeat("a", MaxMessageBytes+1))
	if _, err := ReadBody(huge); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("oversized body error = %v, want ErrBadMessage", err)
	}
}
