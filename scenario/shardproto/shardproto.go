// Package shardproto defines the coordinator ↔ worker wire protocol
// for sharded scenario execution (see ARCHITECTURE.md's coordinator /
// worker diagram). A krum-scenariod coordinator owns the matrix queue
// and the shared result store; workers join the fleet, long-poll for
// cell tasks, heartbeat while executing, and report stable-JSON
// distsgd.Result payloads back. All messages are JSON over HTTP POST
// bodies.
//
// The decoders are the trust boundary of the fleet: every byte a
// coordinator accepts from a worker (and vice versa) passes through
// DecodeJoinRequest, DecodePollRequest, DecodeHeartbeatRequest,
// DecodeResultRequest, DecodeJoinResponse or DecodePollResponse.
// They are strict — unknown fields, trailing garbage, oversized
// payloads and structurally-invalid values all return ErrBadMessage
// (never panic), which the fuzz target FuzzDecodeMessage pins. Spec
// SEMANTICS are deliberately not validated here: a structurally-valid
// but meaningless cell spec is rejected by the executing worker's
// registry parsers, whose errors travel back in ResultRequest.Error.
//
// Authentication: JoinResponse carries a per-worker Token that every
// subsequent message must echo; a message whose (WorkerID, Token) pair
// does not match a live member is answered HTTP 410, exactly like an
// expired lease, so sequential worker ids alone cannot be used to
// steal tasks or inject results. Reported results must additionally be
// in the stable canonical encoding (decode∘encode identity) or the
// report is rejected and the task requeued.
//
// Liveness protocol: a worker's lease is refreshed by any
// authenticated message it sends (join, poll, heartbeat, result), and
// each ASSIGNED TASK carries its own deadline, refreshed by heartbeats
// naming it. A worker whose lease expires is removed from the fleet
// and its assigned tasks are requeued; a task whose own deadline
// lapses is requeued even if its worker still looks alive (the worker
// lost the assignment, or its report never arrived) — either way no
// cell can hang forever. If a worker later reports a result for a
// reassigned task the coordinator answers Accepted=false, and its next
// poll is answered with HTTP 410 — the signal to rejoin under a fresh
// identity.
//
// Batching: a worker with several free slots sets PollRequest.MaxTasks
// and receives up to that many tasks in PollResponse.Tasks; a worker
// executing several cells names them all in HeartbeatRequest.TaskIDs.
// Both fields are optional — zero values speak the original
// one-task-per-message protocol — so mixed-version fleets interoperate,
// and coordinator request rate scales with heartbeat intervals rather
// than with total slot count.
package shardproto

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"krum/scenario"
)

// MaxMessageBytes caps every protocol message body. Result payloads
// dominate: a stable-encoded distsgd.Result carries its FinalParams as
// base64 IEEE-754 bits plus per-round history, so the cap is generous;
// anything larger is hostile or corrupt.
const MaxMessageBytes = 16 << 20

// MaxIDBytes caps worker and task identifier lengths — ids are
// coordinator-assigned short strings, so anything longer is hostile.
const MaxIDBytes = 128

// ErrBadMessage is the sentinel wrapped by every decode failure.
var ErrBadMessage = errors.New("shardproto: bad message")

// JoinRequest asks the coordinator for fleet membership.
type JoinRequest struct {
	// Slots is the worker's concurrent cell capacity (informational —
	// the coordinator dispatches one task per outstanding poll, so a
	// worker consumes exactly as many tasks as it has poll loops).
	Slots int `json:"slots"`
	// Version is the worker's result-semantics version (the store salt,
	// scenario/store.Version). The coordinator rejects a mismatch with
	// HTTP 409: a worker built before a result-affecting change would
	// otherwise compute old-semantics results that the coordinator
	// persists under new-version keys — a silent, permanent stale-serve
	// that the salt exists to prevent.
	Version string `json:"version"`
	// Kernel is the worker's kernel accumulation-order family
	// (vec.KernelOrder — "pair2" or "fma4"). The coordinator pins it
	// exactly like Version, rejecting a mismatch with HTTP 409: the
	// coordinator's store keys are salted with ITS order family, so a
	// worker computing under a different order would persist results the
	// coordinator's own kernels cannot bit-reproduce. Order-identical
	// tiers (pure-Go and SSE2) carry the same family id and mix freely
	// in one fleet.
	Kernel string `json:"kernel"`
}

// JoinResponse grants membership.
type JoinResponse struct {
	// WorkerID is the coordinator-assigned fleet identity the worker
	// must present in every subsequent message.
	WorkerID string `json:"worker_id"`
	// Token is the membership secret paired with WorkerID; every
	// subsequent message must echo it, so knowing (or guessing) a
	// worker id is not enough to act as that worker.
	Token string `json:"token"`
	// LeaseMillis is the liveness lease: a worker silent for longer is
	// presumed dead and its tasks are requeued. Workers should
	// heartbeat at a fraction of this (a third is customary).
	LeaseMillis int `json:"lease_millis"`
}

// PollRequest asks for work; the coordinator holds the request open
// (long poll) until a task arrives or its poll window elapses.
type PollRequest struct {
	// WorkerID is the identity granted by JoinResponse.
	WorkerID string `json:"worker_id"`
	// Token is the membership secret granted by JoinResponse.
	Token string `json:"token"`
	// MaxTasks is how many tasks the worker can accept from this poll —
	// its currently-free slots. 0 means 1 (the pre-batching protocol),
	// so old workers keep working against new coordinators. Batched
	// polls are what keep coordinator RPS flat as fleets grow: one
	// round trip fills a whole worker instead of one slot.
	MaxTasks int `json:"max_tasks,omitempty"`
}

// Task is one dispatched cell.
type Task struct {
	// ID names the assignment; the worker echoes it in heartbeats and
	// in its ResultRequest.
	ID string `json:"id"`
	// Spec is the cell to execute via scenario.RunCell.
	Spec scenario.Spec `json:"spec"`
}

// PollResponse answers a poll: one task, a batch of tasks, or nothing
// (the poll window elapsed idle — the worker just polls again; the
// exchange doubled as a heartbeat).
type PollResponse struct {
	// Task is the dispatched cell, nil when the poll came up empty or
	// the batch is carried in Tasks. At most one of Task and Tasks is
	// set; a response carrying both is rejected.
	Task *Task `json:"task,omitempty"`
	// Tasks is the batched answer to a MaxTasks > 1 poll: up to
	// MaxTasks dispatched cells. Empty means the same as a nil Task.
	Tasks []Task `json:"tasks,omitempty"`
}

// All returns the response's tasks as one slice whichever wire form
// carried them — the single Task, the batched Tasks, or neither.
func (m PollResponse) All() []Task {
	if m.Task != nil {
		return []Task{*m.Task}
	}
	return m.Tasks
}

// HeartbeatRequest keeps a worker's lease alive while it executes a
// long cell (polling is blocked during execution, so heartbeats are
// the only liveness signal mid-cell).
type HeartbeatRequest struct {
	// WorkerID is the identity granted by JoinResponse.
	WorkerID string `json:"worker_id"`
	// Token is the membership secret granted by JoinResponse.
	Token string `json:"token"`
	// TaskID optionally names the task being executed; a heartbeat
	// carrying it refreshes that task's own deadline as well as the
	// worker's lease.
	TaskID string `json:"task_id,omitempty"`
	// TaskIDs is the batched form of TaskID: every task the worker is
	// executing right now, so a multi-slot worker keeps all of its
	// assignments' deadlines fresh with ONE request per heartbeat
	// interval instead of one per slot. TaskID and TaskIDs may be used
	// together; each named task's deadline is refreshed.
	TaskIDs []string `json:"task_ids,omitempty"`
}

// ResultRequest reports a finished task: exactly one of Result and
// Error is set.
type ResultRequest struct {
	// WorkerID is the identity granted by JoinResponse.
	WorkerID string `json:"worker_id"`
	// Token is the membership secret granted by JoinResponse.
	Token string `json:"token"`
	// TaskID is the assignment being answered.
	TaskID string `json:"task_id"`
	// Result is the stable-encoded distsgd.Result (absent on failure).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the cell's failure message (absent on success). Cell
	// failures are deterministic (a bad spec fails identically
	// everywhere), so the coordinator records them instead of retrying.
	Error string `json:"error,omitempty"`
}

// ResultResponse acknowledges a result report.
type ResultResponse struct {
	// Accepted is false when the task is no longer assigned to this
	// worker — its lease expired and the task was reassigned. The
	// worker drops the result; the reassigned execution is
	// byte-identical anyway.
	Accepted bool `json:"accepted"`
}

// ReadBody reads one message body, enforcing MaxMessageBytes. It
// exists so every HTTP handler on both sides of the protocol applies
// the same bound before handing bytes to a decoder.
func ReadBody(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxMessageBytes+1))
	if err != nil {
		return nil, fmt.Errorf("reading message: %w: %w", err, ErrBadMessage)
	}
	if len(data) > MaxMessageBytes {
		return nil, fmt.Errorf("message exceeds %d bytes: %w", MaxMessageBytes, ErrBadMessage)
	}
	return data, nil
}

// decodeStrict unmarshals data into v, rejecting oversized bodies,
// unknown fields and trailing garbage.
func decodeStrict(data []byte, v any) error {
	if len(data) > MaxMessageBytes {
		return fmt.Errorf("message exceeds %d bytes: %w", MaxMessageBytes, ErrBadMessage)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding message: %w: %w", err, ErrBadMessage)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("trailing data after message: %w", ErrBadMessage)
	}
	return nil
}

// checkID validates a required identifier field.
func checkID(field, id string) error {
	if id == "" {
		return fmt.Errorf("empty %s: %w", field, ErrBadMessage)
	}
	if len(id) > MaxIDBytes {
		return fmt.Errorf("%s exceeds %d bytes: %w", field, MaxIDBytes, ErrBadMessage)
	}
	return nil
}

// DecodeJoinRequest decodes and validates a JoinRequest.
func DecodeJoinRequest(data []byte) (JoinRequest, error) {
	var m JoinRequest
	if err := decodeStrict(data, &m); err != nil {
		return JoinRequest{}, err
	}
	if m.Slots < 0 || m.Slots > 1<<16 {
		return JoinRequest{}, fmt.Errorf("slots = %d out of range: %w", m.Slots, ErrBadMessage)
	}
	if err := checkID("version", m.Version); err != nil {
		return JoinRequest{}, err
	}
	if err := checkID("kernel", m.Kernel); err != nil {
		return JoinRequest{}, err
	}
	return m, nil
}

// DecodeJoinResponse decodes and validates a JoinResponse.
func DecodeJoinResponse(data []byte) (JoinResponse, error) {
	var m JoinResponse
	if err := decodeStrict(data, &m); err != nil {
		return JoinResponse{}, err
	}
	if err := checkID("worker_id", m.WorkerID); err != nil {
		return JoinResponse{}, err
	}
	if err := checkID("token", m.Token); err != nil {
		return JoinResponse{}, err
	}
	if m.LeaseMillis <= 0 {
		return JoinResponse{}, fmt.Errorf("lease_millis = %d (need > 0): %w", m.LeaseMillis, ErrBadMessage)
	}
	return m, nil
}

// MaxBatchTasks caps batched message lengths — PollRequest.MaxTasks,
// PollResponse.Tasks and HeartbeatRequest.TaskIDs. It matches the
// slot cap in JoinRequest: no honest worker holds more concurrent
// assignments than it has slots.
const MaxBatchTasks = 1 << 16

// DecodePollRequest decodes and validates a PollRequest.
func DecodePollRequest(data []byte) (PollRequest, error) {
	var m PollRequest
	if err := decodeStrict(data, &m); err != nil {
		return PollRequest{}, err
	}
	if err := checkID("worker_id", m.WorkerID); err != nil {
		return PollRequest{}, err
	}
	if err := checkID("token", m.Token); err != nil {
		return PollRequest{}, err
	}
	if m.MaxTasks < 0 || m.MaxTasks > MaxBatchTasks {
		return PollRequest{}, fmt.Errorf("max_tasks = %d out of range: %w", m.MaxTasks, ErrBadMessage)
	}
	return m, nil
}

// DecodePollResponse decodes and validates a PollResponse.
func DecodePollResponse(data []byte) (PollResponse, error) {
	var m PollResponse
	if err := decodeStrict(data, &m); err != nil {
		return PollResponse{}, err
	}
	if m.Task != nil && len(m.Tasks) > 0 {
		return PollResponse{}, fmt.Errorf("both task and tasks set: %w", ErrBadMessage)
	}
	if len(m.Tasks) > MaxBatchTasks {
		return PollResponse{}, fmt.Errorf("tasks has %d entries (max %d): %w", len(m.Tasks), MaxBatchTasks, ErrBadMessage)
	}
	if m.Task != nil {
		if err := checkID("task id", m.Task.ID); err != nil {
			return PollResponse{}, err
		}
	}
	for _, task := range m.Tasks {
		if err := checkID("task id", task.ID); err != nil {
			return PollResponse{}, err
		}
	}
	return m, nil
}

// DecodeHeartbeatRequest decodes and validates a HeartbeatRequest.
func DecodeHeartbeatRequest(data []byte) (HeartbeatRequest, error) {
	var m HeartbeatRequest
	if err := decodeStrict(data, &m); err != nil {
		return HeartbeatRequest{}, err
	}
	if err := checkID("worker_id", m.WorkerID); err != nil {
		return HeartbeatRequest{}, err
	}
	if err := checkID("token", m.Token); err != nil {
		return HeartbeatRequest{}, err
	}
	if m.TaskID != "" && len(m.TaskID) > MaxIDBytes {
		return HeartbeatRequest{}, fmt.Errorf("task_id exceeds %d bytes: %w", MaxIDBytes, ErrBadMessage)
	}
	if len(m.TaskIDs) > MaxBatchTasks {
		return HeartbeatRequest{}, fmt.Errorf("task_ids has %d entries (max %d): %w", len(m.TaskIDs), MaxBatchTasks, ErrBadMessage)
	}
	for _, id := range m.TaskIDs {
		if err := checkID("task_ids entry", id); err != nil {
			return HeartbeatRequest{}, err
		}
	}
	return m, nil
}

// DecodeResultRequest decodes and validates a ResultRequest, enforcing
// the exactly-one-of-result-and-error invariant.
func DecodeResultRequest(data []byte) (ResultRequest, error) {
	var m ResultRequest
	if err := decodeStrict(data, &m); err != nil {
		return ResultRequest{}, err
	}
	if err := checkID("worker_id", m.WorkerID); err != nil {
		return ResultRequest{}, err
	}
	if err := checkID("token", m.Token); err != nil {
		return ResultRequest{}, err
	}
	if err := checkID("task_id", m.TaskID); err != nil {
		return ResultRequest{}, err
	}
	result := bytes.TrimSpace(m.Result)
	hasResult := len(result) > 0 && !bytes.Equal(result, []byte("null"))
	hasError := m.Error != ""
	if hasResult == hasError {
		return ResultRequest{}, fmt.Errorf("want exactly one of result and error: %w", ErrBadMessage)
	}
	return m, nil
}
