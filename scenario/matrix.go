package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Matrix declares a cartesian experiment grid over a base Spec: every
// non-empty axis replaces the corresponding base field, and Cells
// expands the full product in a deterministic order (workloads × rules
// × attacks × arrivals × f-values × seeds, seeds innermost). An empty
// axis means "use the base value", so a Matrix with only Rules set
// sweeps rules with everything else fixed.
type Matrix struct {
	// Base supplies every field the axes do not override.
	Base Spec `json:"base"`
	// Workloads optionally sweeps workload registry specs.
	Workloads []string `json:"workloads,omitempty"`
	// Rules optionally sweeps rule registry specs.
	Rules []string `json:"rules,omitempty"`
	// Attacks optionally sweeps attack registry specs ("" or "none"
	// means no attack).
	Attacks []string `json:"attacks,omitempty"`
	// Arrivals optionally sweeps arrival-process registry specs ("" or
	// "sync" means synchronous rounds) — the staleness-sweep axis. An
	// absent axis contributes nothing to seed derivation, so grids
	// written before the axis existed keep their derived seeds (and
	// their stored results); a present axis, even a singleton, is a
	// coordinate like any other.
	Arrivals []string `json:"arrivals,omitempty"`
	// Fs optionally sweeps the Byzantine count.
	Fs []int `json:"fs,omitempty"`
	// Seeds optionally sweeps replicate seeds. Cells along the other
	// axes share each seed value, giving paired comparisons under
	// identical randomness (the design the paper's figures use).
	Seeds []uint64 `json:"seeds,omitempty"`
	// DeriveSeeds decorrelates the grid: each cell's seed becomes a
	// deterministic SplitMix64 hash of its replicate seed and its axis
	// coordinates, so no two cells share a random stream. The
	// derivation depends only on the grid shape — two expansions of the
	// same Matrix always agree.
	DeriveSeeds bool `json:"derive_seeds,omitempty"`
}

// Size returns the number of cells the matrix expands to.
func (m Matrix) Size() int {
	n := 1
	for _, axis := range []int{len(m.Workloads), len(m.Rules), len(m.Attacks), len(m.Arrivals), len(m.Fs), len(m.Seeds)} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

// Cells expands the cartesian grid. Each cell is the base spec with the
// axis values substituted, a generated Name, and its derived seed; the
// order is deterministic: workloads × rules × attacks × arrivals × fs ×
// seeds with seeds varying fastest.
func (m Matrix) Cells() []Spec {
	workloads := orBase(m.Workloads, m.Base.Workload)
	rules := orBase(m.Rules, m.Base.Rule)
	attacks := orBase(m.Attacks, m.Base.Attack)
	arrivals := orBase(m.Arrivals, m.Base.Arrival)
	fs := m.Fs
	if len(fs) == 0 {
		fs = []int{m.Base.F}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{m.Base.Seed}
	}

	out := make([]Spec, 0, m.Size())
	for iw, wl := range workloads {
		for ir, rule := range rules {
			for ia, atk := range attacks {
				if strings.EqualFold(strings.TrimSpace(atk), "none") {
					atk = "none"
				}
				for iarr, arr := range arrivals {
					for ifv, f := range fs {
						for _, seed := range seeds {
							cell := m.Base
							cell.Workload = wl
							cell.Rule = rule
							cell.Attack = atk
							cell.Arrival = arr
							cell.F = f
							cell.Seed = seed
							if m.DeriveSeeds {
								// The arrival coordinate joins the hash
								// only when the axis is declared:
								// pre-arrival grids must keep deriving
								// the exact seeds they always did, or
								// every stored result would silently
								// miss.
								if len(m.Arrivals) > 0 {
									cell.Seed = deriveSeed(seed, iw, ir, ia, iarr, ifv)
								} else {
									cell.Seed = deriveSeed(seed, iw, ir, ia, ifv)
								}
							}
							cell.Name = ""
							label := cell.Label()
							if m.Base.Name != "" {
								label = m.Base.Name + ": " + label
							}
							cell.Name = label
							out = append(out, cell)
						}
					}
				}
			}
		}
	}
	return out
}

// Validate checks every cell of the expanded grid, so malformed axis
// entries in a config file are reported before any training starts.
func (m Matrix) Validate() error {
	cells := m.Cells()
	if len(cells) == 0 {
		return fmt.Errorf("empty matrix: %w", ErrBadSpec)
	}
	for i, cell := range cells {
		if err := cell.Validate(); err != nil {
			return fmt.Errorf("cell %d (%s): %w", i, cell.Label(), err)
		}
	}
	return nil
}

// ParseMatrixJSON decodes a Matrix from JSON, rejecting unknown fields.
func ParseMatrixJSON(data []byte) (Matrix, error) {
	var m Matrix
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Matrix{}, fmt.Errorf("decoding scenario matrix: %w: %w", err, ErrBadSpec)
	}
	return m, nil
}

// orBase returns the axis when non-empty and the singleton base value
// otherwise.
func orBase(axis []string, base string) []string {
	if len(axis) > 0 {
		return axis
	}
	return []string{base}
}

// deriveSeed hashes a replicate seed with the cell's axis coordinates
// through SplitMix64 steps — deterministic, order-independent of
// execution, and decorrelated across cells.
func deriveSeed(seed uint64, coords ...int) uint64 {
	state := seed
	for _, c := range coords {
		state += 0x9E3779B97F4A7C15 * (uint64(c) + 1)
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		state = z ^ (z >> 31)
	}
	return state
}
