package scenario

import (
	"encoding/json"
	"testing"
)

// cacheCell builds a small fast cell for workload-cache tests.
func cacheCell(rule string, seed uint64) Spec {
	return Spec{
		Workload:  "gmm(k=3,dim=4,radius=4,sigma=0.5)",
		Rule:      rule,
		Schedule:  "const(gamma=0.05)",
		N:         5,
		F:         1,
		Rounds:    4,
		BatchSize: 4,
		Seed:      seed,
	}
}

// stableBytes is the stable JSON encoding byte-identity is judged by.
func stableBytes(t *testing.T, res any) string {
	t.Helper()
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestWorkloadCacheByteIdentity proves the cache's core contract: a
// cell computed through a cached workload bundle produces bytes
// identical to uncached computation, and cells sharing (workload,
// seed) actually hit the cache.
func TestWorkloadCacheByteIdentity(t *testing.T) {
	cache := NewWorkloadCache(4)
	cells := []Spec{
		cacheCell("krum", 7),
		cacheCell("average", 7),
		cacheCell("coordmedian", 7),
		cacheCell("krum", 8), // different seed: its own bundle
	}
	for i, cell := range cells {
		cached, err := cache.ComputeCell(cell)
		if err != nil {
			t.Fatalf("cell %d via cache: %v", i, err)
		}
		fresh, err := ComputeCell(cell)
		if err != nil {
			t.Fatalf("cell %d fresh: %v", i, err)
		}
		if stableBytes(t, cached) != stableBytes(t, fresh) {
			t.Errorf("cell %d (%s): cached workload changed the result bytes", i, cell.Label())
		}
	}
	hits, misses := cache.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 (one per distinct workload×seed)", misses)
	}
	if hits != 2 {
		t.Errorf("hits = %d, want 2 (the seed-7 rule variations)", hits)
	}
}

// TestWorkloadCacheEviction pins the LRU bound: the cache never holds
// more bundles than its capacity, and an evicted key misses again.
func TestWorkloadCacheEviction(t *testing.T) {
	cache := NewWorkloadCache(2)
	for seed := uint64(1); seed <= 3; seed++ {
		if _, err := cache.ComputeCell(cacheCell("krum", seed)); err != nil {
			t.Fatal(err)
		}
	}
	if n := cache.order.Len(); n > 2 {
		t.Fatalf("cache holds %d bundles, capacity 2", n)
	}
	// Seed 1 was evicted by 3 (LRU); recomputing it must miss.
	_, missesBefore := cache.Stats()
	if _, err := cache.ComputeCell(cacheCell("krum", 1)); err != nil {
		t.Fatal(err)
	}
	if _, misses := cache.Stats(); misses != missesBefore+1 {
		t.Errorf("evicted key did not miss: misses %d → %d", missesBefore, misses)
	}
	// Seed 3 is still resident.
	hitsBefore, _ := cache.Stats()
	if _, err := cache.ComputeCell(cacheCell("average", 3)); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != hitsBefore+1 {
		t.Errorf("resident key did not hit: hits %d → %d", hitsBefore, hits)
	}
}
