package attack

import (
	"fmt"
	"math"

	"krum/internal/vec"
)

// LittleIsEnough is the "a little is enough" attack (Baruch, Baruch,
// Goldberg — NeurIPS 2019), included as the stealth stress test from
// the post-Krum literature: instead of proposing outrageous vectors,
// all f colluders shift their proposal from the estimated mean by
// Z standard deviations per coordinate, in the direction opposing the
// gradient. With Z small enough the proposals sit inside the honest
// point cloud — distance-based selection cannot distinguish them — yet
// the coordinated bias slows or reverses learning when f is a large
// minority.
type LittleIsEnough struct {
	// Z is the per-coordinate shift in standard deviations; the NeurIPS
	// paper derives the largest undetectable value from n and f (≈ 1
	// for typical ratios). 0 means 1.0.
	Z float64
}

var _ Strategy = LittleIsEnough{}

// Name implements Strategy. The returned string is a valid registry
// spec reporting the effective shift.
func (l LittleIsEnough) Name() string { return fmt.Sprintf("littleisenough(z=%g)", l.effZ()) }

func (l LittleIsEnough) effZ() float64 {
	if l.Z == 0 {
		return 1
	}
	return l.Z
}

// Propose implements Strategy.
func (l LittleIsEnough) Propose(ctx *Context) [][]float64 {
	d := ctx.dim()
	mean := ctx.correctMean()
	// Per-coordinate standard deviation of the correct proposals.
	std := make([]float64, d)
	if len(ctx.Correct) > 1 {
		for _, v := range ctx.Correct {
			for j, x := range v {
				diff := x - mean[j]
				std[j] += diff * diff
			}
		}
		inv := 1 / float64(len(ctx.Correct)-1)
		for j := range std {
			std[j] = math.Sqrt(std[j] * inv)
		}
	}
	z := l.effZ()
	proposal := make([]float64, d)
	for j := range proposal {
		// Shift against the gradient estimate's sign, coordinate-wise.
		dir := 1.0
		if mean[j] > 0 {
			dir = -1
		}
		proposal[j] = mean[j] + dir*z*std[j]
	}
	out := make([][]float64, ctx.F)
	for i := range out {
		out[i] = vec.Clone(proposal)
	}
	return out
}
