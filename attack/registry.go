package attack

import (
	"errors"
	"fmt"

	"krum/internal/spec"
)

// This file is the central attack registry, the Byzantine-behaviour
// analogue of the rule registry in internal/core: every
// spec-constructible Strategy registers a named factory, and the
// harness, the scenario package, and the CLI binaries construct attacks
// exclusively through Parse. Spec strings take the form
//
//	none | gaussian(sigma=200) | omniscient(scale=20) | crash(after=10)
//
// and every built-in Strategy's Name() is itself a valid spec, so
// attacks round-trip through experiment tables and JSON scenario files:
// Parse(s.Name()) reconstructs s.
//
// LinearTakeover is deliberately NOT registered: it is parameterized by
// target and weight vectors (the Lemma 3.1 construction), which have no
// compact spec form; build it with NewLinearTakeover.

// ErrBadSpec is returned (wrapped) for malformed or unknown attack
// specs.
var ErrBadSpec = errors.New("attack: bad spec")

// SpecArgs holds the key=value parameters of a parsed attack spec.
type SpecArgs = spec.Args

// Factory builds a Strategy from a parsed spec. Attacks take no
// context defaults — every parameter either appears in the spec or has
// a universal (paper) default.
type Factory = spec.Factory[Strategy, struct{}]

var registry = spec.NewRegistry[Strategy, struct{}]("attack", ErrBadSpec)

// Register adds an attack factory under the given (case-insensitive)
// name; it panics on duplicates — a programmer error at init time.
func Register(name string, f Factory) { registry.Register(name, f) }

// Parse constructs the attack described by spec. Unknown names, unknown
// parameter keys, and malformed values are all reported as wrapped
// ErrBadSpec.
func Parse(s string) (Strategy, error) { return registry.Parse(struct{}{}, s) }

// Names returns the registered attack names, sorted.
func Names() []string { return registry.Names() }

// Usage returns a generated one-line summary of every registered attack
// with its accepted parameters — CLI help text is built from this so it
// can never drift from the implemented set.
func Usage() string { return registry.Usage() }

// init registers the built-in attacks. Third-party attacks can call
// Register from their own init functions.
func init() {
	Register("none", Factory{
		Doc: "no attack: Byzantine slots replay correct proposals",
		New: func(struct{}, SpecArgs) (Strategy, error) { return None{}, nil },
	})
	Register("gaussian", Factory{
		Params: []string{"sigma"},
		Doc:    "high-variance Gaussian garbage (full paper Figure 4; σ = 200)",
		New: func(_ struct{}, a SpecArgs) (Strategy, error) {
			sigma, err := a.Float("sigma", 200)
			if err != nil {
				return nil, err
			}
			if sigma <= 0 {
				return nil, fmt.Errorf("sigma = %g must be positive: %w", sigma, ErrBadSpec)
			}
			return Gaussian{Sigma: sigma}, nil
		},
	})
	Register("omniscient", Factory{
		Params: []string{"scale"},
		Doc:    "negated gradient estimate at large magnitude (full paper Figure 5)",
		New: func(_ struct{}, a SpecArgs) (Strategy, error) {
			scale, err := a.Float("scale", 20)
			if err != nil {
				return nil, err
			}
			if scale <= 0 {
				return nil, fmt.Errorf("scale = %g must be positive: %w", scale, ErrBadSpec)
			}
			return Omniscient{Scale: scale}, nil
		},
	})
	Register("signflip", Factory{
		Doc: "exact gradient negation (stealth variant of omniscient)",
		New: func(struct{}, SpecArgs) (Strategy, error) { return SignFlip{}, nil },
	})
	Register("medoidcollusion", Factory{
		Params: []string{"offset"},
		Doc:    "Figure 2 collusion capturing the medoid rule",
		New: func(_ struct{}, a SpecArgs) (Strategy, error) {
			offset, err := a.Float("offset", 1e4)
			if err != nil {
				return nil, err
			}
			if offset <= 0 {
				return nil, fmt.Errorf("offset = %g must be positive: %w", offset, ErrBadSpec)
			}
			return MedoidCollusion{Offset: offset}, nil
		},
	})
	Register("mimic", Factory{
		Doc: "replay the first correct worker (value-identical control attack)",
		New: func(struct{}, SpecArgs) (Strategy, error) { return Mimic{}, nil },
	})
	Register("crash", Factory{
		Params: []string{"after"},
		Doc:    "fail-stop workers proposing zero vectors from round `after`",
		New: func(_ struct{}, a SpecArgs) (Strategy, error) {
			after, err := a.Int("after", 0)
			if err != nil {
				return nil, err
			}
			if after < 0 {
				return nil, fmt.Errorf("after = %d must be non-negative: %w", after, ErrBadSpec)
			}
			return Crash{After: after}, nil
		},
	})
	Register("littleisenough", Factory{
		Params: []string{"z"},
		Doc:    "coordinated z-standard-deviation shift inside the honest cloud (NeurIPS 2019)",
		New: func(_ struct{}, a SpecArgs) (Strategy, error) {
			z, err := a.Float("z", 1)
			if err != nil {
				return nil, err
			}
			if z <= 0 {
				return nil, fmt.Errorf("z = %g must be positive: %w", z, ErrBadSpec)
			}
			return LittleIsEnough{Z: z}, nil
		},
	})
	Register("hiddencoord", Factory{
		Params: []string{"j", "margin"},
		Doc:    "single-coordinate spike hidden inside Krum's selection radius (ICML 2018 motivation)",
		New: func(_ struct{}, a SpecArgs) (Strategy, error) {
			j, err := a.Int("j", 0)
			if err != nil {
				return nil, err
			}
			margin, err := a.Float("margin", 1)
			if err != nil {
				return nil, err
			}
			if margin <= 0 {
				return nil, fmt.Errorf("margin = %g must be positive: %w", margin, ErrBadSpec)
			}
			return HiddenCoordinate{Coordinate: j, Margin: margin}, nil
		},
	})
}
