package attack

import "testing"

// FuzzParseAttack drives the attack-spec parser with arbitrary input:
// no input may panic, and any accepted spec must round-trip — the
// constructed strategy's Name() is itself a valid spec whose reparse
// yields the same Name (the contract that lets attacks travel through
// experiment tables and JSON scenario files).
func FuzzParseAttack(f *testing.F) {
	for _, seed := range []string{
		"none", "gaussian", "gaussian(sigma=200)", "omniscient",
		"omniscient(scale=20)", "signflip", "mimic", "crash(after=10)",
		"littleisenough(z=1.5)", "hiddencoordinate(coord=3,value=100)",
		"medoidcollusion", "GAUSSIAN(SIGMA=1)", " crash ( after = 0 ) ",
		"", "(", "gaussian(sigma=)", "gaussian(sigma=-1)", "gaussian(sigma=NaN)",
		"crash(after=x)", "nosuchattack", "gaussian(sigma=1,sigma=2)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		atk, err := Parse(s) // must not panic, whatever s is
		if err != nil {
			return
		}
		name := atk.Name()
		back, err := Parse(name)
		if err != nil {
			t.Fatalf("accepted spec %q produced Name %q that does not reparse: %v", s, name, err)
		}
		if got := back.Name(); got != name {
			t.Fatalf("Name round-trip unstable for spec %q: %q -> %q", s, name, got)
		}
	})
}
