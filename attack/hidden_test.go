package attack

import (
	"math"
	"testing"

	"krum/internal/vec"
)

func TestHiddenCoordinateShape(t *testing.T) {
	ctx := testCtx(2, 50)
	out := checkShape(t, HiddenCoordinate{Coordinate: 1}, ctx)
	mean := make([]float64, len(ctx.Correct[0]))
	vec.Mean(mean, ctx.Correct)
	for _, v := range out {
		// The attacked coordinate carries the spike.
		if math.Abs(v[1]-mean[1]) < 0.01 {
			t.Errorf("no spike on coordinate 1: %v vs %v", v[1], mean[1])
		}
		// The remaining coordinates stay close to the honest mean.
		for j := range v {
			if j == 1 {
				continue
			}
			if math.Abs(v[j]-mean[j]) > 0.5 {
				t.Errorf("coordinate %d drifted: %v vs %v", j, v[j], mean[j])
			}
		}
	}
}

func TestHiddenCoordinateWrapsIndex(t *testing.T) {
	ctx := testCtx(1, 51)
	d := len(ctx.Correct[0])
	// Coordinate d+2 wraps to 2; negative wraps too.
	for _, c := range []int{d + 2, -1} {
		out := (HiddenCoordinate{Coordinate: c}).Propose(ctx)
		if len(out) != 1 || len(out[0]) != d {
			t.Fatalf("shape for coordinate %d", c)
		}
		if !vec.AllFinite(out[0]) {
			t.Errorf("non-finite proposal for coordinate %d", c)
		}
	}
}

func TestHiddenCoordinateSpikeScalesWithSpread(t *testing.T) {
	// Tighter correct cluster ⇒ smaller spike (it must stay hidden).
	rng := vec.NewRNG(52)
	mkCtx := func(spread float64) *Context {
		correct := make([][]float64, 6)
		for i := range correct {
			v := make([]float64, 20)
			for j := range v {
				v[j] = 1 + spread*rng.NormFloat64()
			}
			correct[i] = v
		}
		return &Context{Correct: correct, F: 1, RNG: vec.NewRNG(1)}
	}
	tight := (HiddenCoordinate{Coordinate: 3}).Propose(mkCtx(0.01))
	loose := (HiddenCoordinate{Coordinate: 3}).Propose(mkCtx(1.0))
	tightSpike := math.Abs(tight[0][3] - 1)
	looseSpike := math.Abs(loose[0][3] - 1)
	if tightSpike >= looseSpike {
		t.Errorf("spike does not scale with spread: tight %v vs loose %v", tightSpike, looseSpike)
	}
}

func TestHiddenCoordinateName(t *testing.T) {
	if got := (HiddenCoordinate{Coordinate: 7}).Name(); got != "hiddencoord(j=7,margin=1)" {
		t.Errorf("name %q", got)
	}
	if (HiddenCoordinate{}).effMargin() != 1 {
		t.Error("default margin")
	}
}

func TestLittleIsEnoughStaysInsideCloud(t *testing.T) {
	ctx := testCtx(2, 60)
	out := checkShape(t, LittleIsEnough{Z: 1}, ctx)
	mean := make([]float64, len(ctx.Correct[0]))
	vec.Mean(mean, ctx.Correct)
	// The proposal's distance from the mean is on the order of the
	// honest spread (z=1), not orders of magnitude beyond it.
	var maxHonest float64
	for _, v := range ctx.Correct {
		if d := vec.Dist(v, mean); d > maxHonest {
			maxHonest = d
		}
	}
	for _, v := range out {
		if vec.Dist(v, mean) > 3*maxHonest {
			t.Errorf("little-is-enough proposal not stealthy: %v vs honest max %v",
				vec.Dist(v, mean), maxHonest)
		}
	}
	// All colluders propose the same vector.
	if !vec.ApproxEqual(out[0], out[1], 0) {
		t.Error("colluders disagree")
	}
}

func TestLittleIsEnoughOpposesGradientSign(t *testing.T) {
	// Correct proposals all-positive → shift must be negative on every
	// coordinate.
	rng := vec.NewRNG(61)
	correct := make([][]float64, 8)
	for i := range correct {
		v := make([]float64, 10)
		for j := range v {
			v[j] = 5 + 0.5*rng.NormFloat64()
		}
		correct[i] = v
	}
	ctx := &Context{Correct: correct, F: 1, RNG: vec.NewRNG(2)}
	out := (LittleIsEnough{Z: 1.5}).Propose(ctx)
	mean := make([]float64, 10)
	vec.Mean(mean, correct)
	for j, x := range out[0] {
		if x >= mean[j] {
			t.Errorf("coordinate %d shifted up (%v ≥ %v), want opposing", j, x, mean[j])
		}
	}
	if (LittleIsEnough{}).effZ() != 1 {
		t.Error("default z")
	}
}
