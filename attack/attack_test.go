package attack

import (
	"errors"
	"math"
	"testing"

	"krum/internal/vec"
)

func testCtx(f int, seed uint64) *Context {
	rng := vec.NewRNG(seed)
	correct := make([][]float64, 5)
	for i := range correct {
		correct[i] = rng.NewNormal(4, 1, 0.1)
	}
	return &Context{
		Round:   0,
		Params:  make([]float64, 4),
		Correct: correct,
		F:       f,
		RNG:     rng.Split(),
	}
}

// checkShape asserts a strategy returns exactly f vectors of the right
// dimension.
func checkShape(t *testing.T, s Strategy, ctx *Context) [][]float64 {
	t.Helper()
	out := s.Propose(ctx)
	if len(out) != ctx.F {
		t.Fatalf("%s returned %d proposals, want %d", s.Name(), len(out), ctx.F)
	}
	for i, v := range out {
		if len(v) != len(ctx.Correct[0]) {
			t.Fatalf("%s proposal %d has dim %d", s.Name(), i, len(v))
		}
	}
	return out
}

func TestAllStrategiesShapeAndNonMutation(t *testing.T) {
	takeover, err := NewLinearTakeover([]float64{1, 2, 3, 4}, []float64{1, 1, 1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	strategies := []Strategy{
		None{},
		Gaussian{Sigma: 200},
		Omniscient{},
		SignFlip{},
		takeover,
		MedoidCollusion{},
		Mimic{},
		Crash{After: 5},
		HiddenCoordinate{Coordinate: 2},
		LittleIsEnough{},
	}
	for _, s := range strategies {
		t.Run(s.Name(), func(t *testing.T) {
			ctx := testCtx(3, 42)
			before := vec.CloneAll(ctx.Correct)
			checkShape(t, s, ctx)
			for i := range before {
				if !vec.ApproxEqual(ctx.Correct[i], before[i], 0) {
					t.Errorf("%s mutated correct proposal %d", s.Name(), i)
				}
			}
		})
	}
}

func TestNoneReplaysCorrect(t *testing.T) {
	ctx := testCtx(2, 1)
	out := (None{}).Propose(ctx)
	if !vec.ApproxEqual(out[0], ctx.Correct[0], 0) || !vec.ApproxEqual(out[1], ctx.Correct[1], 0) {
		t.Error("None should replay correct proposals")
	}
	// Must be copies, not aliases.
	out[0][0] = 1e9
	if ctx.Correct[0][0] == 1e9 {
		t.Error("None aliases correct proposals")
	}
}

func TestGaussianMagnitude(t *testing.T) {
	ctx := testCtx(2, 2)
	out := (Gaussian{Sigma: 200}).Propose(ctx)
	// E‖v‖ ≈ 200·√4 = 400; anything above 100 proves it is garbage
	// relative to unit-scale gradients.
	for _, v := range out {
		if vec.Norm(v) < 100 {
			t.Errorf("gaussian attack vector suspiciously small: %v", vec.Norm(v))
		}
	}
}

func TestOmniscientOpposesGradient(t *testing.T) {
	ctx := testCtx(2, 3)
	mean := make([]float64, 4)
	vec.Mean(mean, ctx.Correct)
	out := (Omniscient{Scale: 10}).Propose(ctx)
	for _, v := range out {
		if dot := vec.Dot(v, mean); dot >= 0 {
			t.Errorf("omniscient proposal not opposing gradient: dot = %v", dot)
		}
		want := vec.Clone(mean)
		vec.Scale(-10, want)
		if !vec.ApproxEqual(v, want, 1e-12) {
			t.Errorf("omniscient proposal = %v, want %v", v, want)
		}
	}
	// Default scale.
	if (Omniscient{}).effScale() != 20 {
		t.Error("default scale != 20")
	}
}

func TestSignFlipExactNegation(t *testing.T) {
	ctx := testCtx(1, 4)
	mean := make([]float64, 4)
	vec.Mean(mean, ctx.Correct)
	out := (SignFlip{}).Propose(ctx)
	want := vec.Clone(mean)
	vec.Scale(-1, want)
	if !vec.ApproxEqual(out[0], want, 1e-12) {
		t.Errorf("signflip = %v, want %v", out[0], want)
	}
}

func TestLinearTakeoverValidation(t *testing.T) {
	if _, err := NewLinearTakeover(nil, []float64{1}); !errors.Is(err, ErrConfig) {
		t.Error("empty target accepted")
	}
	if _, err := NewLinearTakeover([]float64{1}, nil); !errors.Is(err, ErrConfig) {
		t.Error("empty weights accepted")
	}
	if _, err := NewLinearTakeover([]float64{1}, []float64{1, 0}); !errors.Is(err, ErrConfig) {
		t.Error("zero attacker weight accepted")
	}
}

// The Lemma 3.1 witness end to end: apply the linear rule to
// correct ∪ byzantine proposals and verify the output is exactly U.
func TestLinearTakeoverForcesTarget(t *testing.T) {
	for _, f := range []int{1, 2, 3} {
		ctx := testCtx(f, uint64(10+f))
		n := len(ctx.Correct) + f
		rng := vec.NewRNG(uint64(20 + f))
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 0.05 + rng.Float64()
		}
		target := rng.NewNormal(4, -3, 1)
		a, err := NewLinearTakeover(target, weights)
		if err != nil {
			t.Fatal(err)
		}
		byz := a.Propose(ctx)
		// Assemble the full proposal list (byzantine in last slots).
		all := append(vec.CloneAll(ctx.Correct), byz...)
		agg := make([]float64, 4)
		vec.WeightedSum(agg, weights, all)
		if !vec.ApproxEqual(agg, target, 1e-9) {
			t.Errorf("f=%d: linear output %v, want forced target %v", f, agg, target)
		}
	}
}

func TestMedoidCollusionGeometry(t *testing.T) {
	ctx := testCtx(3, 5)
	out := (MedoidCollusion{Offset: 1e4}).Propose(ctx)
	// First f−1 proposals are remote decoys.
	for i := 0; i < 2; i++ {
		if vec.Norm(out[i]) < 1e3 {
			t.Errorf("decoy %d not remote: %v", i, vec.Norm(out[i]))
		}
	}
	// The last proposal is the barycenter fixpoint: b·(n−1) = Σ others.
	n := len(ctx.Correct) + ctx.F
	sum := make([]float64, 4)
	for _, v := range ctx.Correct {
		vec.Axpy(1, v, sum)
	}
	for i := 0; i < 2; i++ {
		vec.Axpy(1, out[i], sum)
	}
	want := vec.Clone(sum)
	vec.Scale(1/float64(n-1), want)
	if !vec.ApproxEqual(out[2], want, 1e-9) {
		t.Errorf("barycenter proposal = %v, want %v", out[2], want)
	}
	if (MedoidCollusion{}).effOffset() != 1e4 {
		t.Error("default offset")
	}
}

func TestMimicCopiesFirstCorrect(t *testing.T) {
	ctx := testCtx(2, 6)
	out := (Mimic{}).Propose(ctx)
	for _, v := range out {
		if !vec.ApproxEqual(v, ctx.Correct[0], 0) {
			t.Error("mimic does not copy the first correct proposal")
		}
	}
}

func TestCrashTiming(t *testing.T) {
	ctx := testCtx(2, 7)
	ctx.Round = 3
	c := Crash{After: 5}
	out := c.Propose(ctx)
	// Before the crash round: behaves correctly.
	if !vec.ApproxEqual(out[0], ctx.Correct[0], 0) {
		t.Error("pre-crash proposal should replay correct worker")
	}
	ctx.Round = 5
	out = c.Propose(ctx)
	for _, v := range out {
		if vec.Norm(v) != 0 {
			t.Error("post-crash proposal should be zero")
		}
	}
}

func TestEmptyCorrectFallbacks(t *testing.T) {
	// Degenerate context with no correct workers must not panic.
	ctx := &Context{Params: make([]float64, 3), F: 2, RNG: vec.NewRNG(1)}
	for _, s := range []Strategy{None{}, Mimic{}, Crash{}, Omniscient{}, SignFlip{}} {
		out := s.Propose(ctx)
		if len(out) != 2 || len(out[0]) != 3 {
			t.Errorf("%s wrong shape on empty correct set", s.Name())
		}
		for _, v := range out {
			if !vec.AllFinite(v) {
				t.Errorf("%s produced non-finite proposal", s.Name())
			}
		}
	}
}

func TestStrategyNamesAreStable(t *testing.T) {
	if (Gaussian{Sigma: 200}).Name() != "gaussian(sigma=200)" {
		t.Errorf("gaussian name: %s", Gaussian{Sigma: 200}.Name())
	}
	if got := (Crash{After: 3}).Name(); got != "crash(after=3)" {
		t.Errorf("crash name: %s", got)
	}
	if math.IsNaN((Omniscient{}).effScale()) {
		t.Error("omniscient default scale")
	}
}
