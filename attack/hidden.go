package attack

import (
	"fmt"
	"math"

	"krum/internal/vec"
)

// HiddenCoordinate is the attack motivating the Bulyan follow-up work
// (El Mhamdi, Guerraoui, Rouault — ICML 2018), included as the natural
// stress test beyond this paper's attacks: the Byzantine proposals match
// the correct gradient estimate on every coordinate but plant a spike on
// a single coordinate, calibrated so that in high dimension the
// Euclidean distance penalty stays within the natural spread of the
// correct proposals. Krum's selection metric (sum of squared distances)
// barely notices the proposal, yet if selected it corrupts one model
// coordinate per round; Bulyan's coordinate-wise trimming removes it.
type HiddenCoordinate struct {
	// Coordinate is the index attacked (wrapped modulo the dimension).
	Coordinate int
	// Margin scales the spike relative to the correct proposals'
	// per-coordinate spread; values near 1 keep the attacker inside
	// Krum's selection radius. 0 means the default 1.0.
	Margin float64
}

var _ Strategy = HiddenCoordinate{}

// Name implements Strategy. The returned string is a valid registry
// spec reporting the effective margin.
func (h HiddenCoordinate) Name() string {
	return fmt.Sprintf("hiddencoord(j=%d,margin=%g)", h.Coordinate, h.effMargin())
}

func (h HiddenCoordinate) effMargin() float64 {
	if h.Margin == 0 {
		return 1
	}
	return h.Margin
}

// Propose implements Strategy.
func (h HiddenCoordinate) Propose(ctx *Context) [][]float64 {
	d := ctx.dim()
	mean := ctx.correctMean()
	// Estimate the correct proposals' total spread: the spike hides as
	// long as its squared magnitude is comparable to the natural
	// squared distance between two correct proposals.
	var spread2 float64
	for _, v := range ctx.Correct {
		spread2 += vec.Dist2(v, mean)
	}
	if len(ctx.Correct) > 0 {
		spread2 /= float64(len(ctx.Correct))
	}
	spike := h.effMargin() * math.Sqrt(2*spread2+1e-12)
	j := ((h.Coordinate % d) + d) % d

	out := make([][]float64, ctx.F)
	for i := range out {
		v := vec.Clone(mean)
		// Small per-attacker jitter keeps the colluders from being
		// exact duplicates (exact duplicates have score 0 against each
		// other once f ≥ 2, which would make the attack easier, not
		// harder — we keep the conservative version).
		for k := range v {
			v[k] += 0.01 * spike * ctx.RNG.NormFloat64() / math.Sqrt(float64(d))
		}
		v[j] = mean[j] + spike
		out[i] = v
	}
	return out
}
