package attack

import (
	"errors"
	"strings"
	"testing"
)

// TestParseRoundTrip: every registered attack round-trips through its
// Name() — Parse(s.Name()) reconstructs an identically-named strategy.
// This is the property that lets experiment tables and JSON scenario
// files identify attacks by spec string alone.
func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"none", "none"},
		{"gaussian", "gaussian(sigma=200)"},
		{"gaussian(sigma=50)", "gaussian(sigma=50)"},
		{"omniscient", "omniscient(scale=20)"},
		{"omniscient(scale=5)", "omniscient(scale=5)"},
		{"signflip", "signflip"},
		{"medoidcollusion", "medoidcollusion(offset=10000)"},
		{"medoidcollusion(offset=500)", "medoidcollusion(offset=500)"},
		{"mimic", "mimic"},
		{"crash", "crash(after=0)"},
		{"crash(after=7)", "crash(after=7)"},
		{"littleisenough", "littleisenough(z=1)"},
		{"littleisenough(z=1.5)", "littleisenough(z=1.5)"},
		{"hiddencoord", "hiddencoord(j=0,margin=1)"},
		{"hiddencoord(j=3,margin=2)", "hiddencoord(j=3,margin=2)"},
	}
	for _, tc := range cases {
		s, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if s.Name() != tc.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.spec, s.Name(), tc.name)
			continue
		}
		again, err := Parse(s.Name())
		if err != nil {
			t.Errorf("round trip Parse(%q): %v", s.Name(), err)
			continue
		}
		if again.Name() != s.Name() {
			t.Errorf("round trip of %q: %q != %q", tc.spec, again.Name(), s.Name())
		}
	}
}

// TestEveryRegisteredAttackRoundTrips guards future registrations: a
// new attack whose Name() is not a valid spec fails here, not in an
// experiment table.
func TestEveryRegisteredAttackRoundTrips(t *testing.T) {
	for _, name := range Names() {
		s, err := Parse(name)
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
			continue
		}
		again, err := Parse(s.Name())
		if err != nil {
			t.Errorf("%s: Parse(Name() = %q): %v", name, s.Name(), err)
			continue
		}
		if again.Name() != s.Name() {
			t.Errorf("%s: %q != %q", name, again.Name(), s.Name())
		}
	}
}

func TestParseMalformedSpecs(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"nosuchattack",
		"gaussian(",
		"gaussian(sigma=2",
		"gaussian)",
		"gaussian(sigma)",
		"gaussian(sigma=)",
		"gaussian(=2)",
		"gaussian(sigma=2,sigma=3)", // duplicate key
		"gaussian(sigma=x)",         // non-numeric
		"gaussian(sigma=-1)",        // out of range
		"gaussian(zz=3)",            // unknown parameter
		"crash(after=x)",
		"crash(after=-1)",
		"omniscient(scale=0)",
		"littleisenough(z=0)",
		"hiddencoord(margin=0)",
	}
	for _, s := range bad {
		if _, err := Parse(s); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Parse(%q) = %v, want wrapped ErrBadSpec", s, err)
		}
	}
	// Unknown names enumerate the registered set.
	_, err := Parse("nosuchattack")
	if err == nil || !strings.Contains(err.Error(), "gaussian") {
		t.Errorf("error should list registered names, got: %v", err)
	}
}

func TestRegistryCaseStable(t *testing.T) {
	for _, s := range []string{"gaussian", "Gaussian", "GAUSSIAN", "Gaussian(Sigma=50)"} {
		a, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !strings.HasPrefix(a.Name(), "gaussian(") {
			t.Errorf("Parse(%q).Name() = %q", s, a.Name())
		}
	}
	for _, name := range Names() {
		if name != strings.ToLower(name) {
			t.Errorf("registered name %q is not lower case", name)
		}
	}
}

func TestUsageListsEveryAttack(t *testing.T) {
	usage := Usage()
	for _, name := range Names() {
		if !strings.Contains(usage, name) {
			t.Errorf("Usage() omits %q: %s", name, usage)
		}
	}
	if !strings.Contains(usage, "hiddencoord(j,margin)") {
		t.Errorf("Usage() should document hiddencoord parameters: %s", usage)
	}
}
