// Package attack implements the Byzantine worker behaviours used in the
// paper's analysis and experiments. The threat model is the paper's
// Section 2: Byzantine workers have full knowledge of the system — the
// aggregation rule, the parameter vector, and the proposals of every
// correct worker in the current round — and may collude.
//
// Each Strategy receives that omniscient view through a Context and
// returns exactly f proposals. Strategies must not mutate the Context's
// slices.
package attack

import (
	"errors"
	"fmt"

	"krum/internal/vec"
)

// ErrConfig is returned for invalid attack configurations.
var ErrConfig = errors.New("attack: bad configuration")

// Context is the omniscient view handed to a Strategy each round.
type Context struct {
	// Round is the current synchronous round t.
	Round int
	// Params is the parameter vector x_t the server broadcast.
	Params []float64
	// Correct holds the proposals of the n − f correct workers
	// (read-only).
	Correct [][]float64
	// F is the number of Byzantine proposals to produce.
	F int
	// RNG is the adversary's private randomness.
	RNG *vec.RNG
}

// dim returns the proposal dimension.
func (c *Context) dim() int {
	if len(c.Correct) > 0 {
		return len(c.Correct[0])
	}
	return len(c.Params)
}

// correctMean computes the mean of the correct proposals — the
// adversary's best estimate of the true gradient.
func (c *Context) correctMean() []float64 {
	m := make([]float64, c.dim())
	if len(c.Correct) == 0 {
		return m
	}
	vec.Mean(m, c.Correct)
	return m
}

// Strategy produces the Byzantine proposals for one round.
type Strategy interface {
	// Name identifies the attack in experiment tables.
	Name() string
	// Propose returns exactly ctx.F freshly allocated vectors.
	Propose(ctx *Context) [][]float64
}

// None is the absence of attack: Byzantine slots behave exactly like
// correct workers by replaying (copies of) correct proposals. Baseline
// rows of every experiment use it.
type None struct{}

var _ Strategy = None{}

// Name implements Strategy.
func (None) Name() string { return "none" }

// Propose implements Strategy.
func (None) Propose(ctx *Context) [][]float64 {
	out := make([][]float64, ctx.F)
	for i := range out {
		if len(ctx.Correct) > 0 {
			out[i] = vec.Clone(ctx.Correct[i%len(ctx.Correct)])
		} else {
			out[i] = make([]float64, ctx.dim())
		}
	}
	return out
}

// Gaussian is the "Gaussian attack" of the full paper's Figure 4: each
// Byzantine worker proposes a random vector drawn from a
// high-variance isotropic Gaussian (the paper uses σ = 200), i.e. pure
// garbage that averaging happily folds in.
type Gaussian struct {
	// Sigma is the per-coordinate standard deviation. Defaults to the
	// paper's 200 when 0.
	Sigma float64
}

var _ Strategy = Gaussian{}

// Name implements Strategy. The returned string is a valid registry
// spec reporting the effective sigma: Parse(g.Name()) reconstructs the
// attack.
func (g Gaussian) Name() string { return fmt.Sprintf("gaussian(sigma=%g)", g.effSigma()) }

func (g Gaussian) effSigma() float64 {
	if g.Sigma == 0 {
		return 200
	}
	return g.Sigma
}

// Propose implements Strategy.
func (g Gaussian) Propose(ctx *Context) [][]float64 {
	out := make([][]float64, ctx.F)
	for i := range out {
		out[i] = ctx.RNG.NewNormal(ctx.dim(), 0, g.effSigma())
	}
	return out
}

// Omniscient is the full paper's Figure 5 attack: the adversary
// estimates the true gradient from the correct proposals and proposes
// its negation scaled to a large magnitude, actively driving the
// parameter vector uphill. All f colluders propose the same vector.
type Omniscient struct {
	// Scale multiplies the negated gradient estimate; the paper uses
	// "an arbitrarily large factor". Defaults to 20 when 0.
	Scale float64
}

var _ Strategy = Omniscient{}

// Name implements Strategy. The returned string is a valid registry
// spec reporting the effective scale.
func (o Omniscient) Name() string { return fmt.Sprintf("omniscient(scale=%g)", o.effScale()) }

func (o Omniscient) effScale() float64 {
	if o.Scale == 0 {
		return 20
	}
	return o.Scale
}

// Propose implements Strategy.
func (o Omniscient) Propose(ctx *Context) [][]float64 {
	m := ctx.correctMean()
	vec.Scale(-o.effScale(), m)
	out := make([][]float64, ctx.F)
	for i := range out {
		out[i] = vec.Clone(m)
	}
	return out
}

// SignFlip proposes the exact negation of the gradient estimate without
// magnification — a stealthier variant of Omniscient that large-norm
// filters cannot catch.
type SignFlip struct{}

var _ Strategy = SignFlip{}

// Name implements Strategy.
func (SignFlip) Name() string { return "signflip" }

// Propose implements Strategy.
func (SignFlip) Propose(ctx *Context) [][]float64 {
	m := ctx.correctMean()
	vec.Scale(-1, m)
	out := make([][]float64, ctx.F)
	for i := range out {
		out[i] = vec.Clone(m)
	}
	return out
}

// LinearTakeover is the constructive proof of Lemma 3.1: against a
// KNOWN linear rule F = Σ λ_i·V_i, the single Byzantine worker occupying
// the last slot solves for the proposal that forces the aggregate to be
// exactly Target. Any remaining Byzantine workers (F > 1) blend in by
// replaying correct proposals. Construct with NewLinearTakeover.
type LinearTakeover struct {
	// Target is the vector U the attacker forces the rule to output.
	Target []float64
	// Weights are the λ_i of the linear rule under attack (length n);
	// the attacker is assumed to know them (full-knowledge model). The
	// LAST weight belongs to the attacking worker.
	Weights []float64
}

// NewLinearTakeover validates and builds the Lemma 3.1 attack.
func NewLinearTakeover(target, weights []float64) (*LinearTakeover, error) {
	if len(target) == 0 {
		return nil, fmt.Errorf("empty target: %w", ErrConfig)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("empty weights: %w", ErrConfig)
	}
	if weights[len(weights)-1] == 0 {
		return nil, fmt.Errorf("attacker weight is zero — Lemma 3.1 needs non-zero coefficients: %w", ErrConfig)
	}
	return &LinearTakeover{Target: vec.Clone(target), Weights: vec.Clone(weights)}, nil
}

var _ Strategy = (*LinearTakeover)(nil)

// Name implements Strategy.
func (*LinearTakeover) Name() string { return "lineartakeover" }

// Propose implements Strategy.
func (a *LinearTakeover) Propose(ctx *Context) [][]float64 {
	out := make([][]float64, ctx.F)
	// Benign camouflage for all but the last Byzantine slot.
	for i := 0; i < ctx.F-1; i++ {
		if len(ctx.Correct) > 0 {
			out[i] = vec.Clone(ctx.Correct[i%len(ctx.Correct)])
		} else {
			out[i] = make([]float64, ctx.dim())
		}
	}
	// The proposals will occupy slots n−f .. n−1 in order; slot n−1
	// carries the takeover vector:
	// V_b = (U − Σ_{i<n−1} λ_i·V_i) / λ_{n−1}.
	forced := vec.Clone(a.Target)
	idx := 0
	for _, v := range ctx.Correct {
		vec.Axpy(-a.Weights[idx], v, forced)
		idx++
	}
	for i := 0; i < ctx.F-1; i++ {
		vec.Axpy(-a.Weights[idx], out[i], forced)
		idx++
	}
	vec.Scale(1/a.Weights[idx], forced)
	out[ctx.F-1] = forced
	return out
}

// MedoidCollusion is the Figure 2 attack on the distance-based rule:
// f − 1 colluders propose vectors in an arbitrarily remote area B,
// dragging the barycenter of all proposals away from the correct area
// C; the last colluder proposes that shifted barycenter b, which then
// minimizes the sum of squared distances and gets selected. Krum
// precludes it because remote decoys never enter anyone's n − f − 2
// neighbourhood sums.
type MedoidCollusion struct {
	// Offset is how far (per coordinate) area B lies from the correct
	// area; the lemma allows it to be arbitrary. Defaults to 1e4
	// when 0.
	Offset float64
}

var _ Strategy = MedoidCollusion{}

// Name implements Strategy. The returned string is a valid registry
// spec reporting the effective offset.
func (m MedoidCollusion) Name() string {
	return fmt.Sprintf("medoidcollusion(offset=%g)", m.effOffset())
}

func (m MedoidCollusion) effOffset() float64 {
	if m.Offset == 0 {
		return 1e4
	}
	return m.Offset
}

// Propose implements Strategy.
func (m MedoidCollusion) Propose(ctx *Context) [][]float64 {
	out := make([][]float64, ctx.F)
	d := ctx.dim()
	mean := ctx.correctMean()
	for i := 0; i < ctx.F-1; i++ {
		decoy := vec.Clone(mean)
		for j := range decoy {
			decoy[j] += m.effOffset()
		}
		out[i] = decoy
	}
	// The last proposal is the fixpoint barycenter of all n proposals:
	// b = (Σ correct + Σ decoys)/(n−1) solves b = (Σ others + b)/n.
	bary := make([]float64, d)
	for _, v := range ctx.Correct {
		vec.Axpy(1, v, bary)
	}
	for i := 0; i < ctx.F-1; i++ {
		vec.Axpy(1, out[i], bary)
	}
	n := len(ctx.Correct) + ctx.F
	vec.Scale(1/float64(n-1), bary)
	out[ctx.F-1] = bary
	return out
}

// Mimic replays the first correct worker's proposal from every
// Byzantine slot. It is indistinguishable from honesty in value space —
// the control attack for selection-histogram experiments (a selection
// of a mimicking Byzantine worker is harmless, which the derived table
// T1 makes visible).
type Mimic struct{}

var _ Strategy = Mimic{}

// Name implements Strategy.
func (Mimic) Name() string { return "mimic" }

// Propose implements Strategy.
func (Mimic) Propose(ctx *Context) [][]float64 {
	out := make([][]float64, ctx.F)
	for i := range out {
		if len(ctx.Correct) > 0 {
			out[i] = vec.Clone(ctx.Correct[0])
		} else {
			out[i] = make([]float64, ctx.dim())
		}
	}
	return out
}

// Crash models fail-stop workers inside the Byzantine envelope: from
// round After onward the workers "stall" and their proposals are zero
// vectors (the parameter server of the paper's synchronous model still
// receives a value; a stalled process is one of the motivating failure
// modes of Section 1).
type Crash struct {
	// After is the first round at which the workers crash.
	After int
}

var _ Strategy = Crash{}

// Name implements Strategy.
func (c Crash) Name() string { return fmt.Sprintf("crash(after=%d)", c.After) }

// Propose implements Strategy.
func (c Crash) Propose(ctx *Context) [][]float64 {
	out := make([][]float64, ctx.F)
	for i := range out {
		if ctx.Round < c.After && len(ctx.Correct) > 0 {
			out[i] = vec.Clone(ctx.Correct[i%len(ctx.Correct)])
		} else {
			out[i] = make([]float64, ctx.dim())
		}
	}
	return out
}
