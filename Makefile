GO ?= go

# The tracked perf-trajectory benchmarks `make bench` records in
# BENCH_scenario.json: the memoized Bulyan kernel and the concurrent
# scenario-matrix runner throughput.
TRACKED_BENCHES ?= BenchmarkBulyanMemoized|BenchmarkScenarioMatrixRunner

.PHONY: check fmt vet build test bench bench-all

# check is the CI gate: formatting, static analysis, build, tests.
check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the tracked benchmarks and emits BENCH_scenario.json:
# parsed metrics plus the raw `go test -bench` text in the "raw" field
# (benchstat-compatible — extract it to compare two runs). CI runs this
# as a non-blocking step so the perf trajectory is recorded per commit.
# The intermediate file (not a pipe) makes a bench failure fail the
# target instead of silently recording an empty trajectory.
bench:
	$(GO) test -run '^$$' -bench '$(TRACKED_BENCHES)' -benchmem -count 1 . > BENCH_scenario.txt
	$(GO) run ./cmd/krum-benchjson < BENCH_scenario.txt > BENCH_scenario.json
	@rm -f BENCH_scenario.txt
	@cat BENCH_scenario.json

# bench-all is the full local benchmark sweep (figures + kernels).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .
