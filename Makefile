GO ?= go

# The tracked perf-trajectory benchmarks `make bench` records in
# BENCH_scenario.json: the memoized Bulyan kernel, the concurrent
# scenario-matrix runner throughput, the blocked/incremental/large-n
# distance-matrix kernels, the screened Krum selection (prune rate and
# dot fraction as custom metrics), the result store's warm-vs-cold
# grid economics, and the async incremental-cache win under
# bounded-staleness arrival traffic. The BenchmarkDistanceMatrix
# pattern also matches the Incremental and LargeN variants.
TRACKED_BENCHES ?= BenchmarkBulyanMemoized|BenchmarkScenarioMatrixRunner|BenchmarkDistanceMatrix|BenchmarkKrumScreened|BenchmarkRunnerWithStore|BenchmarkRunIncrementalAsync

# Per-target budget for the fuzz smoke pass (CI keeps it short; crank
# it up locally for a real hunt).
FUZZTIME ?= 10s

.PHONY: check check-docs fmt vet build test race shard-tests tier-tests load-test fuzz-smoke bench bench-large bench-all

# check is the CI gate: formatting, static analysis, build, the
# race-detector pass over the full tree (race runs every test, so a
# separate plain `test` pass would only repeat it; CI runs the two as
# parallel jobs instead), and the doc drift guard.
check: fmt vet build race check-docs

# check-docs is the documentation drift guard: every registry built-in
# must be named in README/EXPERIMENTS/ARCHITECTURE and still
# round-trip via its parser, and every exported identifier in the
# newest packages (scenario/store, scenario/shardproto,
# cmd/krum-scenariod) must carry a doc comment. Blocking in CI — docs
# rot is a build failure here.
check-docs:
	$(GO) test -run 'TestDocs' .

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the concurrent
# scenario runner, the parallel distance kernel, and the cross-round
# cache all carry determinism contracts that only mean something if
# they are also data-race-free.
race:
	$(GO) test -race ./...

# shard-tests is the distributed-execution gate: the coordinator +
# in-process-worker-fleet integration tests (sync and async-arrival
# matrices), the chaos tests (worker killed mid-cell, delayed
# heartbeats — over sync and async cells — AND the coordinator itself
# killed mid-matrix and recovered from its journal), the journal
# replay/checkpoint suite, the segmented-store crash-window suite, the
# single-flight property suite and the Monte-Carlo warm-rerun proofs,
# all under the race detector. Blocking in CI as its own job — the
# sharding layer's byte-identity contract is the whole point.
shard-tests:
	$(GO) test -race -count 1 -run 'TestShard|TestChaos|TestJournal|TestSegment|TestSingleFlight|TestMonteCarlo' ./cmd/krum-scenariod ./scenario/store ./internal/harness
	$(GO) test -race -count 1 ./scenario/shardproto

# tier-tests is the kernel-tier matrix: the full vec suite under the
# race detector plus a -short pass over the whole tree, once per
# KRUM_KERNEL_TIER value. Forcing the knob re-runs every within-tier
# bit-identity proof, the golden vectors, and the store/fleet salting
# under the forced tier; an unavailable tier (e.g. avx2 on a
# pre-Haswell box or a non-amd64 host) degrades to the auto-detected
# one with a stderr note, so the matrix is green everywhere and only
# gains coverage on capable hosts. Blocking in CI as its own job.
tier-tests:
	for tier in go sse2 avx2; do \
		echo "=== KRUM_KERNEL_TIER=$$tier ==="; \
		KRUM_KERNEL_TIER=$$tier $(GO) test -race -count 1 ./internal/vec/ ./internal/core/ || exit 1; \
		KRUM_KERNEL_TIER=$$tier $(GO) test -short -count 1 ./... || exit 1; \
	done

# load-test is the in-process multi-tenant load harness: hundreds of
# worker slots against thousands of small cells from several tenants,
# asserting fair-share dispatch ratios (50% ± 10% between two
# equal-priority tenants), strict priority precedence, quota
# backpressure (real 429s, Retry-After honored, zero lost work),
# worker-cache affinity hits and byte-identity against a direct
# in-process Runner. Deliberately saturates the machine for tens of
# seconds, so it is env-gated and runs as a non-blocking CI job.
load-test:
	KRUM_LOAD_TEST=1 $(GO) test -count 1 -run 'TestLoadMultiTenant' -timeout 20m -v ./cmd/krum-scenariod

# fuzz-smoke runs each native fuzz target for a short budget (seeds +
# committed corpus + a few seconds of mutation). One target at a time:
# `go test -fuzz` accepts a single target per invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRule$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzParseRuleIn$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzParseAttack$$' -fuzztime $(FUZZTIME) ./attack
	$(GO) test -run '^$$' -fuzz '^FuzzParseSchedule$$' -fuzztime $(FUZZTIME) ./internal/sgd
	$(GO) test -run '^$$' -fuzz '^FuzzParseWorkload$$' -fuzztime $(FUZZTIME) ./workload
	$(GO) test -run '^$$' -fuzz '^FuzzParseArrival$$' -fuzztime $(FUZZTIME) ./internal/arrival
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeMessage$$' -fuzztime $(FUZZTIME) ./scenario/shardproto

# bench runs the tracked benchmarks and emits BENCH_scenario.json:
# parsed metrics plus the raw `go test -bench` text in the "raw" field
# (benchstat-compatible — extract it to compare two runs). CI runs this
# as a non-blocking step so the perf trajectory is recorded per commit.
# The intermediate file (not a pipe) makes a bench failure fail the
# target instead of silently recording an empty trajectory.
bench:
	$(GO) test -run '^$$' -bench '$(TRACKED_BENCHES)' -benchmem -count 1 . > BENCH_scenario.txt
	$(GO) run ./cmd/krum-benchjson < BENCH_scenario.txt > BENCH_scenario.json
	@rm -f BENCH_scenario.txt
	@cat BENCH_scenario.json

# bench-large unlocks the n = 10000 tier of the screened-selection and
# large-n kernel benchmarks (KRUM_LARGE_BENCH=1): the distance matrix
# alone is ~800 MB and a single iteration takes minutes, so the tier is
# opt-in rather than part of the default tracked set. Emits the same
# BENCH_scenario.json; CI runs it as a non-blocking step.
bench-large:
	KRUM_LARGE_BENCH=1 $(GO) test -run '^$$' -bench 'BenchmarkKrumScreened|BenchmarkDistanceMatrixLargeN' -benchmem -count 1 -timeout 60m . > BENCH_scenario.txt
	$(GO) run ./cmd/krum-benchjson < BENCH_scenario.txt > BENCH_scenario.json
	@rm -f BENCH_scenario.txt
	@cat BENCH_scenario.json

# bench-all is the full local benchmark sweep (figures + kernels).
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .
