module krum

go 1.24
