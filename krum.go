// Package krum is a Go implementation of the Krum Byzantine-tolerant
// gradient aggregation rule and of the distributed SGD protocol it
// protects, reproducing "Brief Announcement: Byzantine-Tolerant Machine
// Learning" (Blanchard, El Mhamdi, Guerraoui, Stainer — PODC 2017; full
// version "Machine Learning with Adversaries", NeurIPS 2017).
//
// # The problem
//
// Distributed SGD deployments aggregate worker gradient estimates by
// averaging. Lemma 3.1 of the paper shows that ANY linear aggregation is
// defenceless: one Byzantine worker can steer the aggregate to an
// arbitrary vector and prevent convergence. Krum replaces the average
// with a non-linear, distance-based selection that provably tolerates f
// Byzantine workers whenever n > 2f + 2.
//
// # The rule
//
// Given proposals V_1, ..., V_n, Krum assigns each worker the score
//
//	s(i) = Σ_{i→j} ‖V_i − V_j‖²
//
// summed over the n − f − 2 proposals closest to V_i, and outputs the
// proposal with the minimal score (ties to the smallest worker id). The
// cost is O(n²·d) — Lemma 4.1 — versus the exponential cost of
// majority-subset methods (implemented here as NewMinimalDiameter for
// comparison).
//
// # Quick start
//
//	rule := krum.NewKrum(f)              // tolerate f Byzantine workers
//	out := make([]float64, d)
//	if err := rule.Aggregate(out, proposals); err != nil { ... }
//
// # Choosing a rule by spec string
//
// Every rule lives in a central registry and is constructible from a
// compact spec string — the form used by the CLI binaries and by
// distsgd.Config.RuleSpec:
//
//	rule, err := krum.ParseRule("multikrum(f=2,m=5)")
//	rule, err = krum.ParseRuleIn(krum.SpecContext{N: 15, F: 3}, "krum") // f defaults to 3
//
// Names and parameters are case-insensitive; omitted parameters fall
// back to the SpecContext cluster shape. RuleNames lists the registered
// set, RuleUsage renders a generated help line (the CLI -rule help text
// is built from it, so it can never drift), and RegisterRule adds
// custom rules to the same namespace.
//
// # Shared aggregation engine
//
// Distance-based rules all revolve around the same O(n²·d) pairwise
// distance matrix (Lemma 4.1). An Engine hands out one RoundContext per
// round of proposals so that selection tracking, aggregation, and any
// diagnostics build that matrix exactly once:
//
//	engine := krum.NewEngine(0)
//	sel, _ := engine.Select(rule, proposals)      // builds the matrix
//	_ = engine.Aggregate(rule, out, proposals)    // rebuilds it (new round)
//
// distsgd.Run uses the engine internally; Bulyan's iterated-Krum phase
// is memoized on the same machinery (Θ(n²·d + θ·n²) instead of
// Θ(θ·n²·d)).
//
// or train end to end against an attack with package
// krum/distsgd:
//
//	res, err := distsgd.Run(distsgd.Config{
//		Model:    m, Dataset: ds,
//		Rule:     krum.NewKrum(3),
//		N:        15, F: 3,
//		Attack:   attack.Omniscient{},
//		BatchSize: 32, Rounds: 300,
//		Schedule: krum.ScheduleInverseT(0.1, 0.75),
//	})
//
// Whole experiment grids are declarative too: package krum/scenario
// turns (workload, rule, attack, schedule) spec strings plus the
// cluster shape into JSON-serializable scenario.Spec values, expands
// cartesian matrices over any axis, and runs them on a bounded
// concurrent runner — the machinery behind
// `krum-experiments -config matrix.json`. Because every cell is a pure
// function of its spec, results cache across processes through the
// content-addressed store in krum/scenario/store (wired to
// `krum-experiments -store` and the krum-scenariod matrix service):
// repeated or overlapping grids replay stored cells byte-identically
// instead of retraining.
//
// See the examples/ directory for complete programs, EXPERIMENTS.md
// for the reproduction of every figure of the paper's evaluation, and
// ARCHITECTURE.md for the layer map and the load-bearing contracts.
package krum

import (
	"krum/internal/arrival"
	"krum/internal/core"
	"krum/internal/sgd"
	"krum/internal/vec"
)

// Rule is the parameter server's choice function F (paper Section 2).
// All aggregation rules in this package implement it.
type Rule = core.Rule

// Selector is implemented by rules that output one of (or a subset of)
// their inputs; Select exposes the chosen indices for
// selection-histogram experiments.
type Selector = core.Selector

// Adversary generates Byzantine proposals for resilience verification
// (see VerifyResilience).
type Adversary = core.Adversary

// ResilienceConfig parameterizes VerifyResilience.
type ResilienceConfig = core.ResilienceConfig

// ResilienceReport is the Monte-Carlo estimate of the Definition 3.2
// conditions.
type ResilienceReport = core.ResilienceReport

// Krum is the paper's choice function (Section 4).
type Krum = core.Krum

// MultiKrum averages the m best-scored proposals (full paper, Figure 6).
type MultiKrum = core.MultiKrum

// Average is the classical (non-resilient) barycentric rule.
type Average = core.Average

// Linear is the general linear rule of Lemma 3.1.
type Linear = core.Linear

// Medoid is the distance-based rule of Section 4 (tolerates only one
// Byzantine worker; see Figure 2).
type Medoid = core.Medoid

// CoordMedian is the coordinate-wise median baseline.
type CoordMedian = core.CoordMedian

// TrimmedMean is the coordinate-wise trimmed-mean baseline.
type TrimmedMean = core.TrimmedMean

// GeoMedian is the Weiszfeld geometric-median baseline.
type GeoMedian = core.GeoMedian

// MinimalDiameter is the exponential majority-based rule sketched in
// the paper's introduction.
type MinimalDiameter = core.MinimalDiameter

// Bulyan is the authors' follow-up defense (ICML 2018) combining
// iterated Krum with a coordinate-wise trimmed mean; it closes Krum's
// hidden-single-coordinate vulnerability and requires n ≥ 4f + 3.
type Bulyan = core.Bulyan

// FiniteGuard wraps any rule with a pre-filter replacing non-finite
// (NaN/Inf) proposals with zero vectors, so one malformed Byzantine
// message cannot poison the distance computations of the inner rule.
type FiniteGuard = core.FiniteGuard

// ClippedMean is the norm-clipping baseline: proposals rescaled to the
// median norm, then averaged. Defeats magnitude attacks at O(n·d) but
// offers no directional guarantee (fails Definition 3.2 against
// sign-flipping adversaries) — an ablation baseline, not a defense.
type ClippedMean = core.ClippedMean

// KrumK is the research/ablation variant of Krum with an explicit
// neighbour count K instead of the paper's n − f − 2. It demonstrates
// why that value is the right one (large K degenerates to the medoid,
// K ≤ f−1 is captured by an identical-clique collusion); use Krum for
// real deployments.
type KrumK = core.KrumK

// SpecContext supplies cluster-shape defaults (n, f) for rule-spec
// parameters the spec string omits; see ParseRuleIn.
type SpecContext = core.SpecContext

// RuleFactory builds a rule from a parsed spec; see RegisterRule.
type RuleFactory = core.Factory

// RuleArgs holds the key=value parameters of a parsed rule spec.
type RuleArgs = core.Args

// Engine is the shared aggregation engine: it hands out one
// RoundContext per round so every rule invocation over the same
// proposals shares a single distance matrix.
type Engine = core.Engine

// RoundContext carries one round's proposals plus the lazily-built,
// memoized pairwise distance matrix shared by distance-based rules.
type RoundContext = core.RoundContext

// RoundCache carries the distance matrix across rounds on a
// cache-enabled Engine (Engine.EnableCache), recomputing only the rows
// of proposals that changed between rounds.
type RoundCache = core.RoundCache

// CacheStats summarizes how a RoundCache served its rounds.
type CacheStats = core.CacheStats

// ContextSelector is implemented by selection rules that can run
// against a shared RoundContext.
type ContextSelector = core.ContextSelector

// ContextRule is implemented by rules whose aggregation can run against
// a shared RoundContext.
type ContextRule = core.ContextRule

// Sentinel errors re-exported from the core implementation.
var (
	// ErrNoVectors is returned when a rule receives zero proposals.
	ErrNoVectors = core.ErrNoVectors
	// ErrDimensionMismatch is returned on inconsistent dimensions.
	ErrDimensionMismatch = core.ErrDimensionMismatch
	// ErrTooFewWorkers is returned when n is too small for the
	// declared f.
	ErrTooFewWorkers = core.ErrTooFewWorkers
	// ErrBadParameter is returned for out-of-range rule parameters.
	ErrBadParameter = core.ErrBadParameter
)

// NewKrum returns the Krum rule tolerating f Byzantine workers
// (requires n ≥ f + 3 proposals; the Proposition 4.2 guarantee
// additionally needs n > 2f + 2).
func NewKrum(f int) *Krum { return core.NewKrum(f) }

// NewMultiKrum returns the m-Krum rule: the average of the m proposals
// with the smallest Krum scores.
func NewMultiKrum(f, m int) *MultiKrum { return core.NewMultiKrum(f, m) }

// NewLinear returns the linear rule Σ λ_i·V_i of Lemma 3.1; all
// coefficients must be non-zero.
func NewLinear(weights []float64) (*Linear, error) { return core.NewLinear(weights) }

// NewMinimalDiameter returns the exponential minimal-diameter subset
// rule excluding f proposals.
func NewMinimalDiameter(f int) *MinimalDiameter { return core.NewMinimalDiameter(f) }

// NewBulyan returns the Bulyan rule tolerating f Byzantine workers
// (requires n ≥ 4f + 3 proposals).
func NewBulyan(f int) *Bulyan { return core.NewBulyan(f) }

// ParseRule constructs a rule from a registry spec string such as
// "krum(f=2)" or "multikrum(f=2,m=5)". Parameters without a universal
// default must be spelled out; use ParseRuleIn to supply cluster-shape
// defaults instead.
func ParseRule(spec string) (Rule, error) { return core.ParseRule(spec) }

// ParseRuleIn constructs a rule from a spec string with cluster-shape
// defaults: ParseRuleIn(SpecContext{N: 15, F: 3}, "krum") yields
// Krum{F: 3}. Unknown names and malformed parameters are reported as
// wrapped ErrBadParameter.
func ParseRuleIn(ctx SpecContext, spec string) (Rule, error) { return core.ParseRuleIn(ctx, spec) }

// RegisterRule adds a custom rule factory to the central registry under
// the given (case-insensitive) name; it panics on duplicates.
func RegisterRule(name string, f RuleFactory) { core.Register(name, f) }

// RuleNames returns the sorted names of every registered rule.
func RuleNames() []string { return core.Names() }

// SplitRuleSpecs splits a comma-separated list of rule specs, keeping
// commas inside parameter parentheses: "krum,multikrum(f=2,m=3)" is
// two specs.
func SplitRuleSpecs(list string) []string { return core.SplitSpecs(list) }

// RuleUsage returns a generated one-line summary of every registered
// rule with its parameters — CLI help text is built from this.
func RuleUsage() string { return core.Usage() }

// NewEngine returns a shared aggregation engine building each round's
// distance matrix with the given number of goroutines (0 = serial).
func NewEngine(parallel int) *Engine { return core.NewEngine(parallel) }

// NewRoundContext returns a context over one round's proposals; rules
// invoked through it (core.SelectContext / core.AggregateContext) share
// a single memoized distance matrix.
func NewRoundContext(vectors [][]float64) *RoundContext { return core.NewRoundContext(vectors) }

// Eta returns η(n, f) of Proposition 4.2, the constant relating the
// gradient-estimator deviation to the resilience angle via
// sin α = η(n,f)·√d·σ/‖g‖.
func Eta(n, f int) (float64, error) { return core.Eta(n, f) }

// VerifyResilience Monte-Carlo checks the (α, f)-Byzantine-resilience
// conditions of Definition 3.2 for an arbitrary rule and adversary.
func VerifyResilience(cfg ResilienceConfig) (*ResilienceReport, error) {
	return core.VerifyResilience(cfg)
}

// Schedule is a learning-rate schedule γ_t.
type Schedule = sgd.Schedule

// ScheduleFactory builds a schedule from a parsed spec; see
// RegisterSchedule.
type ScheduleFactory = sgd.ScheduleFactory

// ErrBadSchedule is returned for malformed schedule specs and invalid
// schedule parameters.
var ErrBadSchedule = sgd.ErrBadSchedule

// ParseSchedule constructs a schedule from a registry spec string such
// as "const(gamma=0.1)" or "inverset(gamma=0.5,power=0.75,t0=200)" —
// the form accepted by the CLI binaries, scenario files, and
// distsgd.Config.ScheduleSpec. Every built-in schedule's Name() is
// itself a valid spec (round-trips).
func ParseSchedule(spec string) (Schedule, error) { return sgd.ParseSchedule(spec) }

// RegisterSchedule adds a custom schedule factory to the central
// registry under the given (case-insensitive) name; it panics on
// duplicates.
func RegisterSchedule(name string, f ScheduleFactory) { sgd.RegisterSchedule(name, f) }

// ScheduleNames returns the sorted names of every registered schedule.
func ScheduleNames() []string { return sgd.ScheduleNames() }

// ScheduleUsage returns a generated one-line summary of every
// registered schedule with its parameters — CLI help text is built from
// this.
func ScheduleUsage() string { return sgd.ScheduleUsage() }

// ScheduleConstant returns the fixed schedule γ_t = gamma.
func ScheduleConstant(gamma float64) Schedule { return sgd.Constant{Gamma: gamma} }

// ScheduleInverseT returns γ_t = gamma/(1+t)^power, which satisfies the
// Robbins–Monro conditions of Proposition 4.3 for 0.5 < power ≤ 1.
func ScheduleInverseT(gamma, power float64) Schedule {
	return sgd.InverseT{Gamma: gamma, Power: power}
}

// ScheduleInverseTStretched is ScheduleInverseT with a decay horizon:
// γ_t = gamma/(1+t/t0)^power.
func ScheduleInverseTStretched(gamma, power, t0 float64) Schedule {
	return sgd.InverseT{Gamma: gamma, Power: power, T0: t0}
}

// ScheduleStep returns the step-decay schedule used by the deep
// experiments: rate gamma multiplied by factor every `every` rounds.
func ScheduleStep(gamma float64, every int, factor float64) Schedule {
	return sgd.Step{Gamma: gamma, Every: every, Factor: factor}
}

// KernelTier is the identity of one Gram-microkernel implementation
// tier (see internal/vec): "go", "sse2" or "avx2", selected once at
// process start from CPU feature detection and the KRUM_KERNEL_TIER
// environment knob. Each tier defines a canonical floating-point
// accumulation order; results are bit-reproducible within a tier's
// order family and norm-relative-close across families.
type KernelTier = vec.Tier

// ActiveKernelTier returns the kernel tier every distance computation
// in this process dispatches to.
func ActiveKernelTier() KernelTier { return vec.KernelTier() }

// ActiveKernelOrder returns the active tier's accumulation-order family
// id ("pair2" or "fma4") — the identity distsgd.Result.Kernel records,
// the scenario store salts keys with, and the fleet join handshake
// pins. Two processes sharing an order id produce bit-identical
// results on identical inputs; processes with different ids agree only
// to norm-relative tolerance.
func ActiveKernelOrder() string { return vec.KernelOrder() }

// ArrivalProcess is a deterministic arrival process describing which
// workers submit fresh proposals each round under the bounded-staleness
// asynchronous mode (distsgd.Config.ArrivalSpec,
// scenario.Spec.Arrival). See internal/arrival.
type ArrivalProcess = arrival.Process

// ArrivalTrace is one run's materialized arrival schedule — a stateful
// per-round iterator minted by ArrivalProcess.NewTrace from the cell
// seed alone.
type ArrivalTrace = arrival.Trace

// ArrivalFactory builds an arrival process from a parsed spec; see
// RegisterArrival.
type ArrivalFactory = arrival.Factory

// ErrBadArrival is returned for malformed arrival specs and invalid
// arrival parameters.
var ErrBadArrival = arrival.ErrBadArrival

// ParseArrival constructs an arrival process from a registry spec
// string such as "sync", "bounded(tau=3)" or
// "bernoulli(p=0.5,tau=8,damp=0.1)" — the form accepted by
// distsgd.Config.ArrivalSpec and scenario files. Every built-in
// process's Name() is itself a valid spec (round-trips); tau=0 specs
// canonicalize to "sync".
func ParseArrival(spec string) (ArrivalProcess, error) { return arrival.Parse(spec) }

// RegisterArrival adds a custom arrival-process factory to the central
// registry under the given (case-insensitive) name; it panics on
// duplicates.
func RegisterArrival(name string, f ArrivalFactory) { arrival.Register(name, f) }

// ArrivalNames returns the sorted names of every registered arrival
// process.
func ArrivalNames() []string { return arrival.Names() }

// ArrivalUsage returns a generated one-line summary of every registered
// arrival process with its parameters — CLI help text is built from
// this.
func ArrivalUsage() string { return arrival.Usage() }
