package model

import (
	"errors"
	"testing"

	"krum/internal/vec"
)

func TestConv2DKnownValues(t *testing.T) {
	// 1 channel, 3×3 input, 1 output channel, 2×2 kernel of ones,
	// bias 0: each output is the sum of its 2×2 window.
	conv, err := NewConv2D(1, 3, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float64, conv.ParamCount())
	for i := 0; i < 4; i++ {
		params[i] = 1
	}
	conv.WriteParams(params)
	x := vec.NewDenseFrom(1, 9, []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	out := conv.Forward(x)
	want := []float64{12, 16, 24, 28}
	if !vec.ApproxEqual(out.Data, want, 1e-12) {
		t.Errorf("conv output = %v, want %v", out.Data, want)
	}
}

func TestConv2DBias(t *testing.T) {
	conv, err := NewConv2D(1, 2, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float64, conv.ParamCount())
	// zero weights, biases 3 and -1 (last two slots)
	params[len(params)-2] = 3
	params[len(params)-1] = -1
	conv.WriteParams(params)
	x := vec.NewDense(1, 4)
	out := conv.Forward(x)
	if !vec.ApproxEqual(out.Data, []float64{3, -1}, 0) {
		t.Errorf("bias output = %v", out.Data)
	}
}

func TestConv2DConstruction(t *testing.T) {
	if _, err := NewConv2D(0, 3, 3, 1, 2); !errors.Is(err, ErrConfig) {
		t.Error("zero channels accepted")
	}
	if _, err := NewConv2D(1, 3, 3, 1, 4); !errors.Is(err, ErrConfig) {
		t.Error("kernel larger than input accepted")
	}
	conv, err := NewConv2D(2, 4, 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := conv.ParamCount(), 3*2*2*2+3; got != want {
		t.Errorf("ParamCount = %d, want %d", got, want)
	}
	if _, err := conv.OutDim(5); !errors.Is(err, ErrShape) {
		t.Error("wrong inDim accepted")
	}
	od, err := conv.OutDim(2 * 4 * 4)
	if err != nil {
		t.Fatal(err)
	}
	if od != 3*3*3 {
		t.Errorf("OutDim = %d, want 27", od)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	pool, err := NewMaxPool2D(1, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.NewDenseFrom(1, 16, []float64{
		1, 2, 0, 0,
		3, 4, 0, 5,
		0, 0, 9, 8,
		1, 0, 7, 6,
	})
	out := pool.Forward(x)
	if !vec.ApproxEqual(out.Data, []float64{4, 5, 1, 9}, 0) {
		t.Errorf("pool output = %v", out.Data)
	}
	dout := vec.NewDenseFrom(1, 4, []float64{10, 20, 30, 40})
	dx := pool.Backward(dout)
	// Gradients land exactly on the argmax positions.
	want := make([]float64, 16)
	want[5] = 10  // the 4
	want[7] = 20  // the 5
	want[12] = 30 // the 1
	want[10] = 40 // the 9
	if !vec.ApproxEqual(dx.Data, want, 0) {
		t.Errorf("pool dx = %v, want %v", dx.Data, want)
	}
}

func TestMaxPoolConstruction(t *testing.T) {
	if _, err := NewMaxPool2D(1, 5, 4, 2); !errors.Is(err, ErrConfig) {
		t.Error("non-divisible height accepted")
	}
	if _, err := NewMaxPool2D(0, 4, 4, 2); !errors.Is(err, ErrConfig) {
		t.Error("zero channels accepted")
	}
}

// The decisive correctness test: analytic gradients of a full ConvNet
// (conv → relu → pool → dense → relu → dense under softmax-xent) match
// finite differences.
func TestConvNetGradientCheck(t *testing.T) {
	m, err := NewConvNet(8, 8, 2, 6, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(21)
	x := vec.NewDense(3, 64)
	rng.FillNormal(x.Data, 0, 1)
	y := vec.NewDense(3, 3)
	for i := 0; i < 3; i++ {
		y.Set(i, rng.Intn(3), 1)
	}
	// ReLU + maxpool kinks: slightly relaxed tolerance.
	checkGradient(t, m, x, y, 2e-4)
}

func TestConvNetConstructionErrors(t *testing.T) {
	// 7×7 input: conv leaves 3×3 which is not poolable by 2.
	if _, err := NewConvNet(7, 7, 2, 4, 2, 1); !errors.Is(err, ErrConfig) {
		t.Error("non-poolable geometry accepted")
	}
}

func TestConvCloneIndependence(t *testing.T) {
	m, err := NewConvNet(8, 8, 2, 5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if !vec.ApproxEqual(c.Params(nil), m.Params(nil), 0) {
		t.Fatal("clone params differ")
	}
	p := c.Params(nil)
	p[0] += 5
	if err := c.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if vec.ApproxEqual(c.Params(nil), m.Params(nil), 1e-12) {
		t.Error("conv clone shares storage")
	}
}

// A ConvNet can fit a trivial two-class "bright quadrant" image task.
func TestConvNetLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	m, err := NewConvNet(8, 8, 3, 8, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(31)
	const batch = 32
	x := vec.NewDense(batch, 64)
	y := vec.NewDense(batch, 2)
	makeBatch := func() {
		x.Zero()
		y.Zero()
		for i := 0; i < batch; i++ {
			cls := rng.Intn(2)
			// Class 0: bright top-left 4×4; class 1: bright bottom-right.
			for yy := 0; yy < 4; yy++ {
				for xx := 0; xx < 4; xx++ {
					var idx int
					if cls == 0 {
						idx = yy*8 + xx
					} else {
						idx = (yy+4)*8 + xx + 4
					}
					x.Set(i, idx, 1+0.2*rng.NormFloat64())
				}
			}
			y.Set(i, cls, 1)
		}
	}
	grad := make([]float64, m.Dim())
	p := m.Params(nil)
	for step := 0; step < 150; step++ {
		makeBatch()
		if _, err := m.Gradient(grad, x, y); err != nil {
			t.Fatal(err)
		}
		vec.Axpy(-0.3, grad, p)
		if err := m.SetParams(p); err != nil {
			t.Fatal(err)
		}
	}
	makeBatch()
	acc, err := EvalAccuracy(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("ConvNet accuracy %v, want ≥ 0.9", acc)
	}
}
