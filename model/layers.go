package model

import (
	"fmt"
	"math"

	"krum/internal/vec"
)

// Layer is one stage of a feed-forward network. Forward caches whatever
// Backward needs; Backward consumes the upstream gradient, accumulates
// parameter gradients internally, and returns the gradient with respect
// to its input. Layers are stateful and owned by exactly one Network.
type Layer interface {
	// OutDim returns the per-sample output width given the input width,
	// or an error if the layer cannot accept it.
	OutDim(inDim int) (int, error)
	// Forward computes the layer output for a batch (rows = samples).
	Forward(x *vec.Dense) *vec.Dense
	// Backward propagates: given dL/dout it returns dL/din.
	Backward(dout *vec.Dense) *vec.Dense
	// ParamCount returns the number of trainable scalars.
	ParamCount() int
	// ReadParams copies the parameters into dst (len == ParamCount).
	ReadParams(dst []float64)
	// WriteParams overwrites the parameters from src.
	WriteParams(src []float64)
	// ReadGrads copies the accumulated gradients into dst.
	ReadGrads(dst []float64)
	// CloneLayer returns an independent deep copy.
	CloneLayer() Layer
}

// Dense is the fully connected layer y = x·W + b with W (in×out) and
// bias b (out). Construct with NewDense; weights are initialized by the
// Network with He/Xavier scaling.
type Dense struct {
	In, Out int
	w       *vec.Dense // In × Out
	b       []float64  // Out
	gw      *vec.Dense
	gb      []float64
	lastX   *vec.Dense
	dxBuf   *vec.Dense
	outBuf  *vec.Dense
}

// NewDense returns a zero-initialized fully connected layer; the owning
// Network initializes the weights.
func NewDense(in, out int) *Dense {
	return &Dense{
		In: in, Out: out,
		w:  vec.NewDense(in, out),
		b:  make([]float64, out),
		gw: vec.NewDense(in, out),
		gb: make([]float64, out),
	}
}

var _ Layer = (*Dense)(nil)

// OutDim implements Layer.
func (l *Dense) OutDim(inDim int) (int, error) {
	if inDim != l.In {
		return 0, fmt.Errorf("dense layer expects %d inputs, got %d: %w", l.In, inDim, ErrShape)
	}
	return l.Out, nil
}

// Forward implements Layer.
func (l *Dense) Forward(x *vec.Dense) *vec.Dense {
	l.lastX = x
	if l.outBuf == nil || l.outBuf.Rows != x.Rows {
		l.outBuf = vec.NewDense(x.Rows, l.Out)
	}
	vec.MatMul(l.outBuf, x, l.w)
	vec.AddRowVector(l.outBuf, l.b)
	return l.outBuf
}

// Backward implements Layer.
func (l *Dense) Backward(dout *vec.Dense) *vec.Dense {
	// dW = xᵀ·dout, db = Σ rows(dout), dx = dout·Wᵀ.
	vec.MatMulATB(l.gw, l.lastX, dout)
	vec.SumRows(l.gb, dout)
	if l.dxBuf == nil || l.dxBuf.Rows != dout.Rows {
		l.dxBuf = vec.NewDense(dout.Rows, l.In)
	}
	vec.MatMulABT(l.dxBuf, dout, l.w)
	return l.dxBuf
}

// ParamCount implements Layer.
func (l *Dense) ParamCount() int { return l.In*l.Out + l.Out }

// ReadParams implements Layer.
func (l *Dense) ReadParams(dst []float64) {
	copy(dst, l.w.Data)
	copy(dst[len(l.w.Data):], l.b)
}

// WriteParams implements Layer.
func (l *Dense) WriteParams(src []float64) {
	copy(l.w.Data, src)
	copy(l.b, src[len(l.w.Data):])
}

// ReadGrads implements Layer.
func (l *Dense) ReadGrads(dst []float64) {
	copy(dst, l.gw.Data)
	copy(dst[len(l.gw.Data):], l.gb)
}

// CloneLayer implements Layer.
func (l *Dense) CloneLayer() Layer {
	c := NewDense(l.In, l.Out)
	copy(c.w.Data, l.w.Data)
	copy(c.b, l.b)
	return c
}

// initWeights applies fan-in scaled Gaussian initialization.
func (l *Dense) initWeights(rng *vec.RNG, gain float64) {
	std := gain / math.Sqrt(float64(l.In))
	rng.FillNormal(l.w.Data, 0, std)
	vec.Zero(l.b)
}

// Activation is a parameter-free element-wise layer. Kind selects the
// nonlinearity.
type Activation struct {
	Kind   ActKind
	lastIn *vec.Dense
	outBuf *vec.Dense
	dxBuf  *vec.Dense
}

// ActKind enumerates supported element-wise nonlinearities.
type ActKind int

// Supported activation kinds. Start at 1 so the zero value is invalid
// (per the style guide's "start enums at one").
const (
	// ActReLU is max(0, x).
	ActReLU ActKind = iota + 1
	// ActSigmoid is 1/(1+e^{-x}).
	ActSigmoid
	// ActTanh is tanh(x).
	ActTanh
)

// String returns the lower-case name of the activation.
func (k ActKind) String() string {
	switch k {
	case ActReLU:
		return "relu"
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	default:
		return fmt.Sprintf("actkind(%d)", int(k))
	}
}

// NewActivation returns an activation layer of the given kind.
func NewActivation(kind ActKind) *Activation { return &Activation{Kind: kind} }

var _ Layer = (*Activation)(nil)

// OutDim implements Layer.
func (a *Activation) OutDim(inDim int) (int, error) {
	switch a.Kind {
	case ActReLU, ActSigmoid, ActTanh:
		return inDim, nil
	default:
		return 0, fmt.Errorf("unknown activation %d: %w", a.Kind, ErrConfig)
	}
}

// Forward implements Layer.
func (a *Activation) Forward(x *vec.Dense) *vec.Dense {
	a.lastIn = x
	if a.outBuf == nil || a.outBuf.Rows != x.Rows || a.outBuf.Cols != x.Cols {
		a.outBuf = vec.NewDense(x.Rows, x.Cols)
	}
	out := a.outBuf.Data
	switch a.Kind {
	case ActReLU:
		for i, v := range x.Data {
			if v > 0 {
				out[i] = v
			} else {
				out[i] = 0
			}
		}
	case ActSigmoid:
		for i, v := range x.Data {
			out[i] = 1 / (1 + math.Exp(-v))
		}
	case ActTanh:
		for i, v := range x.Data {
			out[i] = math.Tanh(v)
		}
	}
	return a.outBuf
}

// Backward implements Layer.
func (a *Activation) Backward(dout *vec.Dense) *vec.Dense {
	if a.dxBuf == nil || a.dxBuf.Rows != dout.Rows || a.dxBuf.Cols != dout.Cols {
		a.dxBuf = vec.NewDense(dout.Rows, dout.Cols)
	}
	dx := a.dxBuf.Data
	switch a.Kind {
	case ActReLU:
		for i, v := range a.lastIn.Data {
			if v > 0 {
				dx[i] = dout.Data[i]
			} else {
				dx[i] = 0
			}
		}
	case ActSigmoid:
		for i := range dx {
			s := a.outBuf.Data[i]
			dx[i] = dout.Data[i] * s * (1 - s)
		}
	case ActTanh:
		for i := range dx {
			th := a.outBuf.Data[i]
			dx[i] = dout.Data[i] * (1 - th*th)
		}
	}
	return a.dxBuf
}

// ParamCount implements Layer.
func (a *Activation) ParamCount() int { return 0 }

// ReadParams implements Layer.
func (a *Activation) ReadParams([]float64) {}

// WriteParams implements Layer.
func (a *Activation) WriteParams([]float64) {}

// ReadGrads implements Layer.
func (a *Activation) ReadGrads([]float64) {}

// CloneLayer implements Layer.
func (a *Activation) CloneLayer() Layer { return NewActivation(a.Kind) }
