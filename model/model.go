// Package model provides the from-scratch learning models the
// reproduction trains with Byzantine-tolerant distributed SGD: linear and
// logistic regression, multi-layer perceptrons and a small convolutional
// network, together with the losses and the flat-parameter plumbing the
// aggregation rules operate on.
//
// Every model exposes its parameters as a single flat []float64 of
// dimension d — the paper's parameter vector x ∈ R^d — and computes flat
// gradient estimates from mini-batches, which is exactly the worker-side
// computation V = G(x, ξ) of the paper's Section 2.
package model

import (
	"errors"
	"fmt"

	"krum/internal/vec"
)

// Sentinel errors for model construction and use.
var (
	// ErrShape is returned when batch shapes or parameter lengths do
	// not match the model.
	ErrShape = errors.New("model: shape mismatch")
	// ErrConfig is returned for invalid model configurations.
	ErrConfig = errors.New("model: bad configuration")
)

// Model is a differentiable predictor with flat parameters. A Model is
// NOT safe for concurrent use; the distributed engines give each worker
// its own replica (Clone) and only exchange flat vectors, mirroring the
// paper's broadcast-compute-aggregate rounds.
type Model interface {
	// Dim returns the number d of parameters.
	Dim() int
	// Params copies the current parameters into dst (allocating when
	// dst is nil) and returns it.
	Params(dst []float64) []float64
	// SetParams overwrites the parameters from the flat vector p.
	SetParams(p []float64) error
	// Gradient computes the mini-batch average gradient of the loss at
	// the current parameters into dst and returns the mini-batch loss.
	// x is the (batch × features) input matrix, y the (batch × outputs)
	// target matrix.
	Gradient(dst []float64, x, y *vec.Dense) (float64, error)
	// Loss returns the mean loss over the batch without touching
	// gradients.
	Loss(x, y *vec.Dense) (float64, error)
	// Predict returns the (batch × outputs) raw model outputs.
	Predict(x *vec.Dense) (*vec.Dense, error)
	// Clone returns an independent deep copy (same architecture and
	// parameter values, no shared state).
	Clone() Model
}

// Accuracy computes classification accuracy from raw outputs: for
// multi-class targets (cols > 1) it compares argmax rows; for a single
// output column it thresholds at 0.5 (binary classification with
// probabilities or at 0 for ±1 margins when margin is true — see
// BinaryAccuracy).
func Accuracy(outputs, targets *vec.Dense) (float64, error) {
	if outputs.Rows != targets.Rows || outputs.Cols != targets.Cols {
		return 0, fmt.Errorf("outputs %dx%d vs targets %dx%d: %w",
			outputs.Rows, outputs.Cols, targets.Rows, targets.Cols, ErrShape)
	}
	if outputs.Rows == 0 {
		return 0, fmt.Errorf("empty batch: %w", ErrShape)
	}
	correct := 0
	if outputs.Cols == 1 {
		for i := 0; i < outputs.Rows; i++ {
			pred := 0.0
			if outputs.At(i, 0) >= 0.5 {
				pred = 1
			}
			if pred == targets.At(i, 0) {
				correct++
			}
		}
	} else {
		for i := 0; i < outputs.Rows; i++ {
			if vec.Argmax(outputs.Row(i)) == vec.Argmax(targets.Row(i)) {
				correct++
			}
		}
	}
	return float64(correct) / float64(outputs.Rows), nil
}

// EvalAccuracy runs m on the batch and returns its accuracy — the
// convenience used by every experiment loop.
func EvalAccuracy(m Model, x, y *vec.Dense) (float64, error) {
	out, err := m.Predict(x)
	if err != nil {
		return 0, err
	}
	return Accuracy(out, y)
}
