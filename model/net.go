package model

import (
	"fmt"

	"krum/internal/vec"
)

// Network is a feed-forward composition of Layers trained against a
// Loss. It implements Model with flat parameters laid out layer by
// layer in construction order. Construct with NewNetwork or the NewMLP /
// NewConvNet helpers.
type Network struct {
	inDim   int
	outDim  int
	layers  []Layer
	loss    Loss
	offsets []int // offsets[i] is the flat index of layer i's params
	dim     int
}

var _ Model = (*Network)(nil)

// NewNetwork assembles the layers, validates the shape chain starting
// from inDim, and initializes weights deterministically from seed
// (He-style fan-in scaling, gain √2, which suits the ReLU networks of
// the experiments and is harmless for the others).
func NewNetwork(inDim int, loss Loss, seed uint64, layers ...Layer) (*Network, error) {
	if inDim <= 0 {
		return nil, fmt.Errorf("input dimension %d: %w", inDim, ErrConfig)
	}
	if loss == nil {
		return nil, fmt.Errorf("nil loss: %w", ErrConfig)
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("no layers: %w", ErrConfig)
	}
	n := &Network{inDim: inDim, layers: layers, loss: loss}
	cur := inDim
	n.offsets = make([]int, len(layers))
	rng := vec.NewRNG(seed)
	for i, l := range layers {
		out, err := l.OutDim(cur)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
		n.offsets[i] = n.dim
		n.dim += l.ParamCount()
		cur = out
		switch lt := l.(type) {
		case *Dense:
			lt.initWeights(rng.Split(), 1.4142135623730951)
		case *Conv2D:
			lt.initWeights(rng.Split(), 1.4142135623730951)
		}
	}
	n.outDim = cur
	return n, nil
}

// NewMLP builds inDim → hidden[0] → ... → hidden[k-1] → outDim with the
// given activation between dense layers and the given loss on the raw
// output (fused softmax/sigmoid losses receive logits).
func NewMLP(inDim int, hidden []int, outDim int, act ActKind, loss Loss, seed uint64) (*Network, error) {
	var layers []Layer
	cur := inDim
	for _, h := range hidden {
		if h <= 0 {
			return nil, fmt.Errorf("hidden width %d: %w", h, ErrConfig)
		}
		layers = append(layers, NewDense(cur, h), NewActivation(act))
		cur = h
	}
	layers = append(layers, NewDense(cur, outDim))
	return NewNetwork(inDim, loss, seed, layers...)
}

// Dim implements Model.
func (n *Network) Dim() int { return n.dim }

// OutDim returns the per-sample output width.
func (n *Network) OutDim() int { return n.outDim }

// LossFunc returns the network's loss.
func (n *Network) LossFunc() Loss { return n.loss }

// Params implements Model.
func (n *Network) Params(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, n.dim)
	}
	for i, l := range n.layers {
		if c := l.ParamCount(); c > 0 {
			l.ReadParams(dst[n.offsets[i] : n.offsets[i]+c])
		}
	}
	return dst
}

// SetParams implements Model.
func (n *Network) SetParams(p []float64) error {
	if len(p) != n.dim {
		return fmt.Errorf("got %d params, want %d: %w", len(p), n.dim, ErrShape)
	}
	for i, l := range n.layers {
		if c := l.ParamCount(); c > 0 {
			l.WriteParams(p[n.offsets[i] : n.offsets[i]+c])
		}
	}
	return nil
}

// forward runs the batch through every layer and returns raw outputs
// (aliasing the last layer's buffer).
func (n *Network) forward(x *vec.Dense) (*vec.Dense, error) {
	if x.Cols != n.inDim {
		return nil, fmt.Errorf("input width %d, want %d: %w", x.Cols, n.inDim, ErrShape)
	}
	cur := x
	for _, l := range n.layers {
		cur = l.Forward(cur)
	}
	return cur, nil
}

// Gradient implements Model.
func (n *Network) Gradient(dst []float64, x, y *vec.Dense) (float64, error) {
	if len(dst) != n.dim {
		return 0, fmt.Errorf("gradient buffer %d, want %d: %w", len(dst), n.dim, ErrShape)
	}
	out, err := n.forward(x)
	if err != nil {
		return 0, err
	}
	dout := vec.NewDense(out.Rows, out.Cols)
	loss, err := n.loss.Grad(dout, out, y)
	if err != nil {
		return 0, err
	}
	cur := dout
	for i := len(n.layers) - 1; i >= 0; i-- {
		cur = n.layers[i].Backward(cur)
	}
	for i, l := range n.layers {
		if c := l.ParamCount(); c > 0 {
			l.ReadGrads(dst[n.offsets[i] : n.offsets[i]+c])
		}
	}
	return loss, nil
}

// Loss implements Model.
func (n *Network) Loss(x, y *vec.Dense) (float64, error) {
	out, err := n.forward(x)
	if err != nil {
		return 0, err
	}
	return n.loss.Value(out, y)
}

// Predict implements Model: raw outputs mapped through the loss
// transform (softmax/sigmoid probabilities, identity for MSE). The
// returned matrix is freshly allocated and owned by the caller.
func (n *Network) Predict(x *vec.Dense) (*vec.Dense, error) {
	out, err := n.forward(x)
	if err != nil {
		return nil, err
	}
	cp := out.Clone()
	n.loss.Transform(cp)
	return cp, nil
}

// Clone implements Model.
func (n *Network) Clone() Model {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		layers[i] = l.CloneLayer()
	}
	c := &Network{
		inDim:   n.inDim,
		outDim:  n.outDim,
		layers:  layers,
		loss:    n.loss,
		offsets: append([]int(nil), n.offsets...),
		dim:     n.dim,
	}
	return c
}
