package model

import (
	"errors"
	"math"
	"testing"

	"krum/internal/vec"
)

// numericalGradient estimates the flat gradient of m's loss at its
// current parameters by central differences.
func numericalGradient(t *testing.T, m Model, x, y *vec.Dense, eps float64) []float64 {
	t.Helper()
	d := m.Dim()
	p := m.Params(nil)
	grad := make([]float64, d)
	for i := 0; i < d; i++ {
		orig := p[i]
		p[i] = orig + eps
		if err := m.SetParams(p); err != nil {
			t.Fatal(err)
		}
		lp, err := m.Loss(x, y)
		if err != nil {
			t.Fatal(err)
		}
		p[i] = orig - eps
		if err := m.SetParams(p); err != nil {
			t.Fatal(err)
		}
		lm, err := m.Loss(x, y)
		if err != nil {
			t.Fatal(err)
		}
		grad[i] = (lp - lm) / (2 * eps)
		p[i] = orig
	}
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	return grad
}

// checkGradient asserts analytic and numerical gradients agree in
// relative terms.
func checkGradient(t *testing.T, m Model, x, y *vec.Dense, tol float64) {
	t.Helper()
	analytic := make([]float64, m.Dim())
	if _, err := m.Gradient(analytic, x, y); err != nil {
		t.Fatal(err)
	}
	numeric := numericalGradient(t, m, x, y, 1e-5)
	for i := range analytic {
		diff := math.Abs(analytic[i] - numeric[i])
		scale := math.Max(1, math.Max(math.Abs(analytic[i]), math.Abs(numeric[i])))
		if diff/scale > tol {
			t.Fatalf("gradient mismatch at %d: analytic %v vs numeric %v", i, analytic[i], numeric[i])
		}
	}
}

// randomBatch builds a batch of gaussian inputs and one-hot targets.
func randomBatch(rng *vec.RNG, batch, in, classes int) (*vec.Dense, *vec.Dense) {
	x := vec.NewDense(batch, in)
	rng.FillNormal(x.Data, 0, 1)
	y := vec.NewDense(batch, classes)
	for i := 0; i < batch; i++ {
		y.Set(i, rng.Intn(classes), 1)
	}
	return x, y
}

func TestMLPGradientCheckSoftmax(t *testing.T) {
	rng := vec.NewRNG(1)
	m, err := NewMLP(6, []int{5, 4}, 3, ActTanh, SoftmaxCrossEntropy{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	x, y := randomBatch(rng, 4, 6, 3)
	checkGradient(t, m, x, y, 1e-5)
}

func TestMLPGradientCheckReLU(t *testing.T) {
	rng := vec.NewRNG(2)
	m, err := NewMLP(5, []int{8}, 4, ActReLU, SoftmaxCrossEntropy{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	x, y := randomBatch(rng, 5, 5, 4)
	// ReLU kinks make finite differences slightly noisier.
	checkGradient(t, m, x, y, 1e-4)
}

func TestMLPGradientCheckSigmoidMSE(t *testing.T) {
	rng := vec.NewRNG(3)
	m, err := NewMLP(4, []int{6}, 2, ActSigmoid, MSE{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.NewDense(3, 4)
	rng.FillNormal(x.Data, 0, 1)
	y := vec.NewDense(3, 2)
	rng.FillNormal(y.Data, 0, 1)
	checkGradient(t, m, x, y, 1e-5)
}

func TestLogisticGradientCheck(t *testing.T) {
	rng := vec.NewRNG(4)
	m, err := NewLogistic(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.NewDense(6, 7)
	rng.FillNormal(x.Data, 0, 1)
	y := vec.NewDense(6, 1)
	for i := 0; i < 6; i++ {
		y.Set(i, 0, float64(rng.Intn(2)))
	}
	checkGradient(t, m, x, y, 1e-5)
}

func TestLinearRegressionGradientCheck(t *testing.T) {
	rng := vec.NewRNG(5)
	m, err := NewLinearRegression(4, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.NewDense(5, 4)
	rng.FillNormal(x.Data, 0, 1)
	y := vec.NewDense(5, 2)
	rng.FillNormal(y.Data, 0, 2)
	checkGradient(t, m, x, y, 1e-6)
}

func TestParamsRoundTrip(t *testing.T) {
	m, err := NewMLP(3, []int{4}, 2, ActReLU, SoftmaxCrossEntropy{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantDim := 3*4 + 4 + 4*2 + 2
	if m.Dim() != wantDim {
		t.Fatalf("Dim = %d, want %d", m.Dim(), wantDim)
	}
	p := m.Params(nil)
	for i := range p {
		p[i] = float64(i)
	}
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	got := m.Params(nil)
	if !vec.ApproxEqual(got, p, 0) {
		t.Error("Params/SetParams round trip failed")
	}
	// Wrong length rejected.
	if err := m.SetParams(p[:3]); !errors.Is(err, ErrShape) {
		t.Errorf("short SetParams: %v", err)
	}
}

func TestNetworkConstructionErrors(t *testing.T) {
	if _, err := NewNetwork(0, MSE{}, 1, NewDense(1, 1)); !errors.Is(err, ErrConfig) {
		t.Error("inDim=0 accepted")
	}
	if _, err := NewNetwork(3, nil, 1, NewDense(3, 1)); !errors.Is(err, ErrConfig) {
		t.Error("nil loss accepted")
	}
	if _, err := NewNetwork(3, MSE{}, 1); !errors.Is(err, ErrConfig) {
		t.Error("no layers accepted")
	}
	if _, err := NewNetwork(3, MSE{}, 1, NewDense(4, 1)); !errors.Is(err, ErrShape) {
		t.Error("shape chain mismatch accepted")
	}
	if _, err := NewMLP(3, []int{0}, 1, ActReLU, MSE{}, 1); !errors.Is(err, ErrConfig) {
		t.Error("zero hidden width accepted")
	}
	if _, err := NewNetwork(3, MSE{}, 1, NewActivation(ActKind(99))); !errors.Is(err, ErrConfig) {
		t.Error("unknown activation accepted")
	}
}

func TestDeterministicInitialization(t *testing.T) {
	m1, err := NewMLP(5, []int{4}, 3, ActReLU, SoftmaxCrossEntropy{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMLP(5, []int{4}, 3, ActReLU, SoftmaxCrossEntropy{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(m1.Params(nil), m2.Params(nil), 0) {
		t.Error("same seed produced different initializations")
	}
	m3, err := NewMLP(5, []int{4}, 3, ActReLU, SoftmaxCrossEntropy{}, 43)
	if err != nil {
		t.Fatal(err)
	}
	if vec.ApproxEqual(m1.Params(nil), m3.Params(nil), 1e-12) {
		t.Error("different seeds produced identical initializations")
	}
}

func TestCloneIndependence(t *testing.T) {
	m, err := NewMLP(3, []int{4}, 2, ActTanh, SoftmaxCrossEntropy{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if c.Dim() != m.Dim() {
		t.Fatal("clone dimension mismatch")
	}
	if !vec.ApproxEqual(c.Params(nil), m.Params(nil), 0) {
		t.Fatal("clone parameters differ")
	}
	p := c.Params(nil)
	p[0] += 100
	if err := c.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if vec.ApproxEqual(c.Params(nil), m.Params(nil), 1e-9) {
		t.Error("clone shares parameter storage with original")
	}
}

func TestPredictTransforms(t *testing.T) {
	m, err := NewSoftmaxClassifier(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.NewDense(2, 3)
	rng := vec.NewRNG(1)
	rng.FillNormal(x.Data, 0, 1)
	out, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < out.Rows; i++ {
		if math.Abs(vec.Sum(out.Row(i))-1) > 1e-9 {
			t.Errorf("softmax row %d does not sum to 1: %v", i, out.Row(i))
		}
		for _, p := range out.Row(i) {
			if p < 0 || p > 1 {
				t.Errorf("probability out of range: %v", p)
			}
		}
	}
}

func TestGradientBufferValidation(t *testing.T) {
	m, err := NewLinearRegression(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.NewDense(1, 2)
	y := vec.NewDense(1, 1)
	if _, err := m.Gradient(make([]float64, 1), x, y); !errors.Is(err, ErrShape) {
		t.Errorf("short gradient buffer: %v", err)
	}
	if _, err := m.Gradient(make([]float64, m.Dim()), vec.NewDense(1, 3), y); !errors.Is(err, ErrShape) {
		t.Errorf("wrong input width: %v", err)
	}
}

func TestAccuracy(t *testing.T) {
	t.Run("multiclass", func(t *testing.T) {
		out := vec.NewDenseFrom(2, 3, []float64{0.7, 0.2, 0.1, 0.1, 0.1, 0.8})
		tgt := vec.NewDenseFrom(2, 3, []float64{1, 0, 0, 0, 1, 0})
		acc, err := Accuracy(out, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if acc != 0.5 {
			t.Errorf("accuracy = %v, want 0.5", acc)
		}
	})
	t.Run("binary", func(t *testing.T) {
		out := vec.NewDenseFrom(3, 1, []float64{0.9, 0.2, 0.6})
		tgt := vec.NewDenseFrom(3, 1, []float64{1, 0, 0})
		acc, err := Accuracy(out, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(acc-2.0/3.0) > 1e-12 {
			t.Errorf("accuracy = %v", acc)
		}
	})
	t.Run("shape mismatch", func(t *testing.T) {
		if _, err := Accuracy(vec.NewDense(1, 2), vec.NewDense(1, 3)); !errors.Is(err, ErrShape) {
			t.Error("mismatched shapes accepted")
		}
	})
	t.Run("empty batch", func(t *testing.T) {
		if _, err := Accuracy(vec.NewDense(0, 2), vec.NewDense(0, 2)); !errors.Is(err, ErrShape) {
			t.Error("empty batch accepted")
		}
	})
}

// End-to-end sanity: a small MLP fits a separable synthetic problem.
func TestMLPLearnsSeparableData(t *testing.T) {
	rng := vec.NewRNG(99)
	m, err := NewMLP(2, []int{16}, 2, ActReLU, SoftmaxCrossEntropy{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 64
	x := vec.NewDense(batch, 2)
	y := vec.NewDense(batch, 2)
	makeBatch := func() {
		y.Zero()
		for i := 0; i < batch; i++ {
			cls := rng.Intn(2)
			cx := 2*float64(cls) - 1 // centers at ±1
			x.Set(i, 0, cx+0.3*rng.NormFloat64())
			x.Set(i, 1, cx+0.3*rng.NormFloat64())
			y.Set(i, cls, 1)
		}
	}
	grad := make([]float64, m.Dim())
	p := m.Params(nil)
	for step := 0; step < 300; step++ {
		makeBatch()
		if _, err := m.Gradient(grad, x, y); err != nil {
			t.Fatal(err)
		}
		vec.Axpy(-0.5, grad, p)
		if err := m.SetParams(p); err != nil {
			t.Fatal(err)
		}
	}
	makeBatch()
	acc, err := EvalAccuracy(m, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("MLP accuracy %v after training, want ≥ 0.95", acc)
	}
}
