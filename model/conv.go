package model

import (
	"fmt"
	"math"

	"krum/internal/vec"
)

// Conv2D is a 2-D convolution layer over images flattened row-major as
// channel-major planes (sample row = [c0 plane, c1 plane, ...], each
// plane H×W). Stride is 1 and padding is 0; the experiment networks are
// small enough that those generalizations would be dead weight.
// Construct with NewConv2D.
type Conv2D struct {
	InC, InH, InW int
	OutC, K       int

	outH, outW int

	w  []float64 // OutC × InC × K × K
	b  []float64 // OutC
	gw []float64
	gb []float64

	lastX  *vec.Dense
	outBuf *vec.Dense
	dxBuf  *vec.Dense
}

// NewConv2D returns a stride-1, zero-padding convolution layer.
func NewConv2D(inC, inH, inW, outC, k int) (*Conv2D, error) {
	if inC <= 0 || inH <= 0 || inW <= 0 || outC <= 0 || k <= 0 {
		return nil, fmt.Errorf("conv dims (%d,%d,%d,%d,%d) must be positive: %w", inC, inH, inW, outC, k, ErrConfig)
	}
	if k > inH || k > inW {
		return nil, fmt.Errorf("kernel %d exceeds input %dx%d: %w", k, inH, inW, ErrConfig)
	}
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW, OutC: outC, K: k,
		outH: inH - k + 1,
		outW: inW - k + 1,
	}
	c.w = make([]float64, outC*inC*k*k)
	c.b = make([]float64, outC)
	c.gw = make([]float64, len(c.w))
	c.gb = make([]float64, outC)
	return c, nil
}

var _ Layer = (*Conv2D)(nil)

// OutDim implements Layer.
func (c *Conv2D) OutDim(inDim int) (int, error) {
	if inDim != c.InC*c.InH*c.InW {
		return 0, fmt.Errorf("conv expects %d inputs, got %d: %w", c.InC*c.InH*c.InW, inDim, ErrShape)
	}
	return c.OutC * c.outH * c.outW, nil
}

// wAt returns the index of weight (oc, ic, i, j).
func (c *Conv2D) wAt(oc, ic, i, j int) int {
	return ((oc*c.InC+ic)*c.K+i)*c.K + j
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *vec.Dense) *vec.Dense {
	c.lastX = x
	outWidth := c.OutC * c.outH * c.outW
	if c.outBuf == nil || c.outBuf.Rows != x.Rows {
		c.outBuf = vec.NewDense(x.Rows, outWidth)
	}
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		out := c.outBuf.Row(s)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.b[oc]
			for oy := 0; oy < c.outH; oy++ {
				for ox := 0; ox < c.outW; ox++ {
					acc := bias
					for ic := 0; ic < c.InC; ic++ {
						plane := in[ic*c.InH*c.InW:]
						for ky := 0; ky < c.K; ky++ {
							rowOff := (oy + ky) * c.InW
							wOff := c.wAt(oc, ic, ky, 0)
							for kx := 0; kx < c.K; kx++ {
								acc += plane[rowOff+ox+kx] * c.w[wOff+kx]
							}
						}
					}
					out[(oc*c.outH+oy)*c.outW+ox] = acc
				}
			}
		}
	}
	return c.outBuf
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *vec.Dense) *vec.Dense {
	if c.dxBuf == nil || c.dxBuf.Rows != dout.Rows {
		c.dxBuf = vec.NewDense(dout.Rows, c.InC*c.InH*c.InW)
	}
	vec.Zero(c.gw)
	vec.Zero(c.gb)
	c.dxBuf.Zero()
	for s := 0; s < dout.Rows; s++ {
		in := c.lastX.Row(s)
		dO := dout.Row(s)
		dx := c.dxBuf.Row(s)
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < c.outH; oy++ {
				for ox := 0; ox < c.outW; ox++ {
					g := dO[(oc*c.outH+oy)*c.outW+ox]
					if g == 0 {
						continue
					}
					c.gb[oc] += g
					for ic := 0; ic < c.InC; ic++ {
						planeOff := ic * c.InH * c.InW
						for ky := 0; ky < c.K; ky++ {
							rowOff := planeOff + (oy+ky)*c.InW + ox
							wOff := c.wAt(oc, ic, ky, 0)
							for kx := 0; kx < c.K; kx++ {
								c.gw[wOff+kx] += in[rowOff+kx] * g
								dx[rowOff+kx] += c.w[wOff+kx] * g
							}
						}
					}
				}
			}
		}
	}
	return c.dxBuf
}

// ParamCount implements Layer.
func (c *Conv2D) ParamCount() int { return len(c.w) + len(c.b) }

// ReadParams implements Layer.
func (c *Conv2D) ReadParams(dst []float64) {
	copy(dst, c.w)
	copy(dst[len(c.w):], c.b)
}

// WriteParams implements Layer.
func (c *Conv2D) WriteParams(src []float64) {
	copy(c.w, src)
	copy(c.b, src[len(c.w):])
}

// ReadGrads implements Layer.
func (c *Conv2D) ReadGrads(dst []float64) {
	copy(dst, c.gw)
	copy(dst[len(c.gw):], c.gb)
}

// CloneLayer implements Layer.
func (c *Conv2D) CloneLayer() Layer {
	cp, err := NewConv2D(c.InC, c.InH, c.InW, c.OutC, c.K)
	if err != nil {
		// Construction already succeeded once with these dimensions.
		panic(fmt.Sprintf("model: cloning valid Conv2D failed: %v", err))
	}
	copy(cp.w, c.w)
	copy(cp.b, c.b)
	return cp
}

// initWeights applies fan-in scaled Gaussian initialization.
func (c *Conv2D) initWeights(rng *vec.RNG, gain float64) {
	fanIn := float64(c.InC * c.K * c.K)
	rng.FillNormal(c.w, 0, gain/math.Sqrt(fanIn))
	vec.Zero(c.b)
}

// MaxPool2D is a non-overlapping P×P max-pooling layer over
// channel-major planes. Construct with NewMaxPool2D; input height and
// width must be divisible by P.
type MaxPool2D struct {
	C, H, W, P int
	outH, outW int

	argmax []int // per forward: flat input index of each output's max
	outBuf *vec.Dense
	dxBuf  *vec.Dense
}

// NewMaxPool2D returns a pooling layer.
func NewMaxPool2D(c, h, w, p int) (*MaxPool2D, error) {
	if c <= 0 || h <= 0 || w <= 0 || p <= 0 {
		return nil, fmt.Errorf("pool dims (%d,%d,%d,%d) must be positive: %w", c, h, w, p, ErrConfig)
	}
	if h%p != 0 || w%p != 0 {
		return nil, fmt.Errorf("pool %d does not divide %dx%d: %w", p, h, w, ErrConfig)
	}
	return &MaxPool2D{C: c, H: h, W: w, P: p, outH: h / p, outW: w / p}, nil
}

var _ Layer = (*MaxPool2D)(nil)

// OutDim implements Layer.
func (m *MaxPool2D) OutDim(inDim int) (int, error) {
	if inDim != m.C*m.H*m.W {
		return 0, fmt.Errorf("pool expects %d inputs, got %d: %w", m.C*m.H*m.W, inDim, ErrShape)
	}
	return m.C * m.outH * m.outW, nil
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *vec.Dense) *vec.Dense {
	outWidth := m.C * m.outH * m.outW
	if m.outBuf == nil || m.outBuf.Rows != x.Rows {
		m.outBuf = vec.NewDense(x.Rows, outWidth)
		m.argmax = make([]int, x.Rows*outWidth)
	}
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		out := m.outBuf.Row(s)
		am := m.argmax[s*outWidth : (s+1)*outWidth]
		for c := 0; c < m.C; c++ {
			plane := c * m.H * m.W
			for oy := 0; oy < m.outH; oy++ {
				for ox := 0; ox < m.outW; ox++ {
					bestIdx := plane + (oy*m.P)*m.W + ox*m.P
					best := in[bestIdx]
					for py := 0; py < m.P; py++ {
						rowOff := plane + (oy*m.P+py)*m.W + ox*m.P
						for px := 0; px < m.P; px++ {
							if v := in[rowOff+px]; v > best {
								best = v
								bestIdx = rowOff + px
							}
						}
					}
					oIdx := (c*m.outH+oy)*m.outW + ox
					out[oIdx] = best
					am[oIdx] = bestIdx
				}
			}
		}
	}
	return m.outBuf
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dout *vec.Dense) *vec.Dense {
	if m.dxBuf == nil || m.dxBuf.Rows != dout.Rows {
		m.dxBuf = vec.NewDense(dout.Rows, m.C*m.H*m.W)
	}
	m.dxBuf.Zero()
	outWidth := dout.Cols
	for s := 0; s < dout.Rows; s++ {
		dO := dout.Row(s)
		dx := m.dxBuf.Row(s)
		am := m.argmax[s*outWidth : (s+1)*outWidth]
		for i, g := range dO {
			dx[am[i]] += g
		}
	}
	return m.dxBuf
}

// ParamCount implements Layer.
func (m *MaxPool2D) ParamCount() int { return 0 }

// ReadParams implements Layer.
func (m *MaxPool2D) ReadParams([]float64) {}

// WriteParams implements Layer.
func (m *MaxPool2D) WriteParams([]float64) {}

// ReadGrads implements Layer.
func (m *MaxPool2D) ReadGrads([]float64) {}

// CloneLayer implements Layer.
func (m *MaxPool2D) CloneLayer() Layer {
	cp, err := NewMaxPool2D(m.C, m.H, m.W, m.P)
	if err != nil {
		panic(fmt.Sprintf("model: cloning valid MaxPool2D failed: %v", err))
	}
	return cp
}

// NewConvNet builds the small convolutional classifier used by the
// image experiments: conv(K=5, outC) → ReLU → maxpool(2) → dense →
// ReLU → dense(classes), under softmax cross-entropy. The input is a
// single-channel h×w image per row.
func NewConvNet(h, w, convChannels, hiddenDense, classes int, seed uint64) (*Network, error) {
	conv, err := NewConv2D(1, h, w, convChannels, 5)
	if err != nil {
		return nil, err
	}
	ph, pw := h-4, w-4 // after 5×5 valid conv
	if ph%2 != 0 || pw%2 != 0 {
		return nil, fmt.Errorf("conv output %dx%d not poolable by 2: %w", ph, pw, ErrConfig)
	}
	pool, err := NewMaxPool2D(convChannels, ph, pw, 2)
	if err != nil {
		return nil, err
	}
	flat := convChannels * (ph / 2) * (pw / 2)
	return NewNetwork(h*w, SoftmaxCrossEntropy{}, seed,
		conv,
		NewActivation(ActReLU),
		pool,
		NewDense(flat, hiddenDense),
		NewActivation(ActReLU),
		NewDense(hiddenDense, classes),
	)
}
