package model

import (
	"fmt"
	"math"

	"krum/internal/vec"
)

// Loss couples the scalar training objective with its gradient at the
// network output. Implementations receive raw network outputs (logits
// for the cross-entropy losses, which fold the final softmax/sigmoid in
// for numerical stability).
type Loss interface {
	// Name identifies the loss in logs.
	Name() string
	// Value returns the mean loss over the batch.
	Value(outputs, targets *vec.Dense) (float64, error)
	// Grad writes dL/doutputs (already divided by the batch size) into
	// dst and returns the mean loss.
	Grad(dst, outputs, targets *vec.Dense) (float64, error)
	// Transform maps raw outputs to prediction space (softmax
	// probabilities, sigmoid probabilities, or identity). Used by
	// Predict.
	Transform(outputs *vec.Dense)
}

func checkLossShapes(outputs, targets *vec.Dense) error {
	if outputs.Rows != targets.Rows || outputs.Cols != targets.Cols {
		return fmt.Errorf("outputs %dx%d vs targets %dx%d: %w",
			outputs.Rows, outputs.Cols, targets.Rows, targets.Cols, ErrShape)
	}
	if outputs.Rows == 0 {
		return fmt.Errorf("empty batch: %w", ErrShape)
	}
	return nil
}

// MSE is the mean squared error ½‖out − y‖² averaged over the batch
// (the ½ makes the gradient exactly out − y).
type MSE struct{}

var _ Loss = MSE{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Value implements Loss.
func (MSE) Value(outputs, targets *vec.Dense) (float64, error) {
	if err := checkLossShapes(outputs, targets); err != nil {
		return 0, err
	}
	var s float64
	for i, o := range outputs.Data {
		d := o - targets.Data[i]
		s += d * d
	}
	return s / (2 * float64(outputs.Rows)), nil
}

// Grad implements Loss.
func (MSE) Grad(dst, outputs, targets *vec.Dense) (float64, error) {
	if err := checkLossShapes(outputs, targets); err != nil {
		return 0, err
	}
	inv := 1 / float64(outputs.Rows)
	var s float64
	for i, o := range outputs.Data {
		d := o - targets.Data[i]
		s += d * d
		dst.Data[i] = d * inv
	}
	return s / (2 * float64(outputs.Rows)), nil
}

// Transform implements Loss (identity for regression).
func (MSE) Transform(*vec.Dense) {}

// SoftmaxCrossEntropy is the multi-class cross-entropy over softmax of
// the logits, with one-hot targets. Softmax and loss are fused so the
// output gradient is the numerically benign (softmax − target)/batch.
type SoftmaxCrossEntropy struct{}

var _ Loss = SoftmaxCrossEntropy{}

// Name implements Loss.
func (SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// softmaxRow computes softmax of row in place with max-subtraction.
func softmaxRow(row []float64) {
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range row {
		e := math.Exp(v - m)
		row[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range row {
		row[i] *= inv
	}
}

// Value implements Loss.
func (SoftmaxCrossEntropy) Value(outputs, targets *vec.Dense) (float64, error) {
	if err := checkLossShapes(outputs, targets); err != nil {
		return 0, err
	}
	var total float64
	probs := make([]float64, outputs.Cols)
	for i := 0; i < outputs.Rows; i++ {
		copy(probs, outputs.Row(i))
		softmaxRow(probs)
		for j, t := range targets.Row(i) {
			if t > 0 {
				total -= t * math.Log(math.Max(probs[j], 1e-300))
			}
		}
	}
	return total / float64(outputs.Rows), nil
}

// Grad implements Loss.
func (s SoftmaxCrossEntropy) Grad(dst, outputs, targets *vec.Dense) (float64, error) {
	if err := checkLossShapes(outputs, targets); err != nil {
		return 0, err
	}
	inv := 1 / float64(outputs.Rows)
	var total float64
	for i := 0; i < outputs.Rows; i++ {
		drow := dst.Row(i)
		copy(drow, outputs.Row(i))
		softmaxRow(drow)
		for j, t := range targets.Row(i) {
			if t > 0 {
				total -= t * math.Log(math.Max(drow[j], 1e-300))
			}
			drow[j] = (drow[j] - t) * inv
		}
	}
	return total / float64(outputs.Rows), nil
}

// Transform implements Loss: softmax over each row.
func (SoftmaxCrossEntropy) Transform(outputs *vec.Dense) {
	for i := 0; i < outputs.Rows; i++ {
		softmaxRow(outputs.Row(i))
	}
}

// SigmoidBCE is binary cross-entropy on sigmoid of a single logit
// column, with {0, 1} targets. Like SoftmaxCrossEntropy it is fused:
// gradient = (σ(z) − y)/batch.
type SigmoidBCE struct{}

var _ Loss = SigmoidBCE{}

// Name implements Loss.
func (SigmoidBCE) Name() string { return "sigmoid-bce" }

// Value implements Loss.
func (SigmoidBCE) Value(outputs, targets *vec.Dense) (float64, error) {
	if err := checkLossShapes(outputs, targets); err != nil {
		return 0, err
	}
	var total float64
	for i, z := range outputs.Data {
		y := targets.Data[i]
		// Stable log(1+e^{-|z|}) formulation:
		// BCE = max(z,0) − z·y + log(1+e^{−|z|}).
		total += math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
	}
	return total / float64(outputs.Rows), nil
}

// Grad implements Loss.
func (SigmoidBCE) Grad(dst, outputs, targets *vec.Dense) (float64, error) {
	v, err := (SigmoidBCE{}).Value(outputs, targets)
	if err != nil {
		return 0, err
	}
	inv := 1 / float64(outputs.Rows)
	for i, z := range outputs.Data {
		dst.Data[i] = (1/(1+math.Exp(-z)) - targets.Data[i]) * inv
	}
	return v, nil
}

// Transform implements Loss: element-wise sigmoid.
func (SigmoidBCE) Transform(outputs *vec.Dense) {
	for i, z := range outputs.Data {
		outputs.Data[i] = 1 / (1 + math.Exp(-z))
	}
}
