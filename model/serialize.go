package model

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Checkpointing: flat parameter vectors serialized with a small
// self-describing binary header, so long training runs (and the
// parameter server binaries) can save and restore model state. The
// format is independent of architecture — only the dimension is
// checked — matching the repository's "models exchange flat vectors"
// design.

// checkpointMagic identifies the format ("KRUM" in ASCII).
const checkpointMagic = 0x4B52554D

// checkpointVersion is bumped on layout changes.
const checkpointVersion = 1

// ErrCheckpoint is returned for malformed or mismatched checkpoints.
var ErrCheckpoint = errors.New("model: bad checkpoint")

// SaveParams writes m's parameters to w: magic, version, dimension,
// then IEEE-754 bits little endian.
func SaveParams(w io.Writer, m Model) error {
	if m == nil {
		return fmt.Errorf("nil model: %w", ErrCheckpoint)
	}
	params := m.Params(nil)
	header := make([]byte, 12)
	binary.LittleEndian.PutUint32(header[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(header[4:], checkpointVersion)
	binary.LittleEndian.PutUint32(header[8:], uint32(len(params)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("writing checkpoint header: %w", err)
	}
	buf := make([]byte, 8*len(params))
	for i, p := range params {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(p))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("writing checkpoint payload: %w", err)
	}
	return nil
}

// LoadParams reads a checkpoint from r into m. The stored dimension
// must equal m.Dim().
func LoadParams(r io.Reader, m Model) error {
	if m == nil {
		return fmt.Errorf("nil model: %w", ErrCheckpoint)
	}
	header := make([]byte, 12)
	if _, err := io.ReadFull(r, header); err != nil {
		return fmt.Errorf("reading checkpoint header: %w", err)
	}
	if binary.LittleEndian.Uint32(header[0:]) != checkpointMagic {
		return fmt.Errorf("bad magic: %w", ErrCheckpoint)
	}
	if v := binary.LittleEndian.Uint32(header[4:]); v != checkpointVersion {
		return fmt.Errorf("version %d, want %d: %w", v, checkpointVersion, ErrCheckpoint)
	}
	dim := int(binary.LittleEndian.Uint32(header[8:]))
	if dim != m.Dim() {
		return fmt.Errorf("checkpoint dim %d, model dim %d: %w", dim, m.Dim(), ErrCheckpoint)
	}
	buf := make([]byte, 8*dim)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("reading checkpoint payload: %w", err)
	}
	params := make([]float64, dim)
	for i := range params {
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	if err := m.SetParams(params); err != nil {
		return fmt.Errorf("applying checkpoint: %w", err)
	}
	return nil
}
