package model

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"krum/internal/vec"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m1, err := NewMLP(5, []int{4}, 3, ActTanh, SoftmaxCrossEntropy{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1); err != nil {
		t.Fatal(err)
	}
	m2, err := NewMLP(5, []int{4}, 3, ActTanh, SoftmaxCrossEntropy{}, 999)
	if err != nil {
		t.Fatal(err)
	}
	if vec.ApproxEqual(m1.Params(nil), m2.Params(nil), 1e-12) {
		t.Fatal("test models accidentally identical")
	}
	if err := LoadParams(&buf, m2); err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(m1.Params(nil), m2.Params(nil), 0) {
		t.Error("round trip lost parameters")
	}
}

func TestLoadParamsValidation(t *testing.T) {
	m, err := NewLinearRegression(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveParams(nil, nil); !errors.Is(err, ErrCheckpoint) {
		t.Error("nil model accepted by SaveParams")
	}
	if err := LoadParams(bytes.NewReader(nil), nil); !errors.Is(err, ErrCheckpoint) {
		t.Error("nil model accepted by LoadParams")
	}
	// Truncated header.
	if err := LoadParams(bytes.NewReader([]byte{1, 2}), m); err == nil {
		t.Error("truncated header accepted")
	}
	// Bad magic.
	bad := make([]byte, 12)
	if err := LoadParams(bytes.NewReader(bad), m); !errors.Is(err, ErrCheckpoint) {
		t.Error("bad magic accepted")
	}
	// Wrong version.
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:], 99)
	if err := LoadParams(bytes.NewReader(hdr), m); !errors.Is(err, ErrCheckpoint) {
		t.Error("wrong version accepted")
	}
	// Wrong dimension.
	binary.LittleEndian.PutUint32(hdr[4:], checkpointVersion)
	binary.LittleEndian.PutUint32(hdr[8:], 999)
	if err := LoadParams(bytes.NewReader(hdr), m); !errors.Is(err, ErrCheckpoint) {
		t.Error("wrong dimension accepted")
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := SaveParams(&buf, m); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-4]
	if err := LoadParams(bytes.NewReader(short), m); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestCheckpointAcrossArchitecturesSameDim(t *testing.T) {
	// The format is architecture-agnostic by design: two different
	// models with equal Dim() can exchange checkpoints.
	a, err := NewLinearRegression(3, 2, 1) // dim = 3·2+2 = 8
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMLP(2, []int{2}, 1, ActReLU, MSE{}, 2) // dim = 2·2+2 + 2·1+1 = wrong?
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, a); err != nil {
		t.Fatal(err)
	}
	err = LoadParams(&buf, b)
	if a.Dim() == b.Dim() {
		if err != nil {
			t.Errorf("same-dim load failed: %v", err)
		}
	} else if !errors.Is(err, ErrCheckpoint) {
		t.Errorf("dim mismatch not detected: %v", err)
	}
}
