package model

// This file provides the shallow models used by the spambase-style
// experiments and by the convex sanity checks of Proposition 4.3: they
// are single-layer Networks, so all the Model plumbing (flat params,
// batch gradients, cloning) is shared with the deep models.

// NewLinearRegression returns y = x·W + b trained under MSE — the
// strongly convex workload used to sanity-check convergence
// (Proposition 4.3 condition (v) holds globally for it).
func NewLinearRegression(inDim, outDim int, seed uint64) (*Network, error) {
	return NewNetwork(inDim, MSE{}, seed, NewDense(inDim, outDim))
}

// NewLogistic returns a binary logistic-regression model: a single
// logit column under fused sigmoid binary cross-entropy. Targets are
// {0, 1} scalars.
func NewLogistic(inDim int, seed uint64) (*Network, error) {
	return NewNetwork(inDim, SigmoidBCE{}, seed, NewDense(inDim, 1))
}

// NewSoftmaxClassifier returns a linear multi-class classifier under
// fused softmax cross-entropy with one-hot targets.
func NewSoftmaxClassifier(inDim, classes int, seed uint64) (*Network, error) {
	return NewNetwork(inDim, SoftmaxCrossEntropy{}, seed, NewDense(inDim, classes))
}
