package model

import (
	"errors"
	"math"
	"testing"

	"krum/internal/vec"
)

func TestMSEValueAndGrad(t *testing.T) {
	out := vec.NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	tgt := vec.NewDenseFrom(2, 2, []float64{0, 2, 3, 2})
	v, err := (MSE{}).Value(out, tgt)
	if err != nil {
		t.Fatal(err)
	}
	// ½(1 + 0 + 0 + 4)/2 = 1.25
	if math.Abs(v-1.25) > 1e-12 {
		t.Errorf("MSE = %v, want 1.25", v)
	}
	dst := vec.NewDense(2, 2)
	v2, err := (MSE{}).Grad(dst, out, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v {
		t.Error("Grad loss != Value loss")
	}
	want := []float64{0.5, 0, 0, 1}
	if !vec.ApproxEqual(dst.Data, want, 1e-12) {
		t.Errorf("MSE grad = %v, want %v", dst.Data, want)
	}
}

func TestSoftmaxXentKnownValues(t *testing.T) {
	// Uniform logits over 3 classes → loss = ln 3.
	out := vec.NewDenseFrom(1, 3, []float64{0, 0, 0})
	tgt := vec.NewDenseFrom(1, 3, []float64{0, 1, 0})
	v, err := (SoftmaxCrossEntropy{}).Value(out, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-math.Log(3)) > 1e-12 {
		t.Errorf("loss = %v, want ln3 = %v", v, math.Log(3))
	}
	dst := vec.NewDense(1, 3)
	if _, err := (SoftmaxCrossEntropy{}).Grad(dst, out, tgt); err != nil {
		t.Fatal(err)
	}
	third := 1.0 / 3.0
	want := []float64{third, third - 1, third}
	if !vec.ApproxEqual(dst.Data, want, 1e-12) {
		t.Errorf("grad = %v, want %v", dst.Data, want)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	// Extreme logits must not overflow.
	out := vec.NewDenseFrom(1, 2, []float64{1000, -1000})
	tgt := vec.NewDenseFrom(1, 2, []float64{1, 0})
	v, err := (SoftmaxCrossEntropy{}).Value(out, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("loss = %v not finite", v)
	}
	if v > 1e-9 {
		t.Errorf("confident correct prediction should have ~0 loss, got %v", v)
	}
	// Confident wrong prediction: loss ≈ 2000, still finite.
	tgt2 := vec.NewDenseFrom(1, 2, []float64{0, 1})
	v2, err := (SoftmaxCrossEntropy{}).Value(out, tgt2)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(v2, 0) || math.IsNaN(v2) {
		t.Errorf("wrong-prediction loss = %v not finite", v2)
	}
}

func TestSigmoidBCEKnownValues(t *testing.T) {
	out := vec.NewDenseFrom(1, 1, []float64{0})
	tgt := vec.NewDenseFrom(1, 1, []float64{1})
	v, err := (SigmoidBCE{}).Value(out, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-math.Log(2)) > 1e-12 {
		t.Errorf("BCE = %v, want ln2", v)
	}
	dst := vec.NewDense(1, 1)
	if _, err := (SigmoidBCE{}).Grad(dst, out, tgt); err != nil {
		t.Fatal(err)
	}
	if math.Abs(dst.At(0, 0)+0.5) > 1e-12 {
		t.Errorf("grad = %v, want -0.5", dst.At(0, 0))
	}
}

func TestSigmoidBCEStability(t *testing.T) {
	out := vec.NewDenseFrom(2, 1, []float64{500, -500})
	tgt := vec.NewDenseFrom(2, 1, []float64{1, 0})
	v, err := (SigmoidBCE{}).Value(out, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v > 1e-9 {
		t.Errorf("extreme-logit BCE = %v", v)
	}
}

func TestLossShapeValidation(t *testing.T) {
	losses := []Loss{MSE{}, SoftmaxCrossEntropy{}, SigmoidBCE{}}
	for _, l := range losses {
		t.Run(l.Name(), func(t *testing.T) {
			if _, err := l.Value(vec.NewDense(1, 2), vec.NewDense(2, 2)); !errors.Is(err, ErrShape) {
				t.Error("row mismatch accepted")
			}
			if _, err := l.Grad(vec.NewDense(0, 2), vec.NewDense(0, 2), vec.NewDense(0, 2)); !errors.Is(err, ErrShape) {
				t.Error("empty batch accepted")
			}
		})
	}
}

func TestTransforms(t *testing.T) {
	out := vec.NewDenseFrom(1, 2, []float64{3, -1})
	(SoftmaxCrossEntropy{}).Transform(out)
	if math.Abs(vec.Sum(out.Row(0))-1) > 1e-12 {
		t.Error("softmax transform does not normalize")
	}
	out2 := vec.NewDenseFrom(1, 1, []float64{0})
	(SigmoidBCE{}).Transform(out2)
	if out2.At(0, 0) != 0.5 {
		t.Errorf("sigmoid(0) = %v", out2.At(0, 0))
	}
	out3 := vec.NewDenseFrom(1, 1, []float64{42})
	(MSE{}).Transform(out3)
	if out3.At(0, 0) != 42 {
		t.Error("MSE transform should be identity")
	}
}

func TestActKindString(t *testing.T) {
	tests := []struct {
		k    ActKind
		want string
	}{
		{k: ActReLU, want: "relu"},
		{k: ActSigmoid, want: "sigmoid"},
		{k: ActTanh, want: "tanh"},
		{k: ActKind(99), want: "actkind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
