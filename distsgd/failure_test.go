package distsgd

import (
	"math"
	"testing"

	"krum"
	"krum/attack"
	"krum/internal/vec"
)

// Failure-injection tests: the engine must survive (and the rules must
// contain) fail-stop workers, mid-run crashes and malformed proposals.

func TestTrainingSurvivesMidRunCrash(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Rounds = 80
	cfg.EvalEvery = 20
	// Two workers crash (stall to zero vectors) at round 30.
	cfg.Attack = attack.Crash{After: 30}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("diverged under crash fault")
	}
	if res.FinalTestAccuracy < 0.9 {
		t.Errorf("accuracy %v with 2 crashed workers", res.FinalTestAccuracy)
	}
}

func TestCrashedWorkersZeroVectorNeverWinsWithKrum(t *testing.T) {
	// After the crash, the Byzantine slots propose exactly zero. With a
	// far-from-converged model the honest gradients are large, so Krum
	// must not select the zero vectors — selection tracking proves it.
	cfg := quickConfig(t)
	cfg.Rounds = 30
	cfg.EvalEvery = 0
	cfg.TrackSelection = true
	cfg.Attack = attack.Crash{After: 0} // crashed from the start
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.ByzantineSelectionRate(); rate > 0.2 {
		t.Errorf("krum selected crashed workers at rate %v", rate)
	}
}

// nanAttack proposes NaN vectors — the nastiest malformed input.
type nanAttack struct{}

func (nanAttack) Name() string { return "nan" }

func (nanAttack) Propose(ctx *attack.Context) [][]float64 {
	out := make([][]float64, ctx.F)
	for i := range out {
		v := make([]float64, len(ctx.Params))
		vec.Fill(v, math.NaN())
		out[i] = v
	}
	return out
}

func TestFiniteGuardContainsNaNAttackEndToEnd(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Rounds = 60
	cfg.EvalEvery = 20
	cfg.Attack = nanAttack{}
	cfg.Rule = krum.FiniteGuard{Inner: krum.NewKrum(2)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("guarded run diverged under NaN attack")
	}
	if !vec.AllFinite(res.FinalParams) {
		t.Fatal("NaN leaked into parameters")
	}
	if res.FinalTestAccuracy < 0.9 {
		t.Errorf("accuracy %v under NaN attack with FiniteGuard", res.FinalTestAccuracy)
	}
}

func TestUnguardedAverageIsPoisonedByNaN(t *testing.T) {
	// Control: without the guard, averaging NaN proposals corrupts the
	// parameters immediately and the engine reports divergence.
	cfg := quickConfig(t)
	cfg.Rounds = 10
	cfg.EvalEvery = 0
	cfg.Attack = nanAttack{}
	cfg.Rule = krum.Average{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged {
		t.Error("NaN attack against plain averaging should be detected as divergence")
	}
	if res.DivergedRound != 0 {
		t.Errorf("divergence detected at round %d, want 0", res.DivergedRound)
	}
}

func TestLabelFlipPoisoningDegradesAverageNotKrum(t *testing.T) {
	// Data poisoning at the worker level: Byzantine workers compute
	// honest-looking gradients on flipped labels. This is the
	// "biased data distribution" failure of the paper's introduction.
	cfg := quickConfig(t)
	cfg.Rounds = 100
	cfg.EvalEvery = 25
	cfg.Attack = labelFlipAttack{cfg: cfg}

	krumCfg := cfg
	krumCfg.Rule = krum.NewKrum(2)
	krumRes, err := Run(krumCfg)
	if err != nil {
		t.Fatal(err)
	}
	if krumRes.FinalTestAccuracy < 0.85 {
		t.Errorf("krum accuracy %v under label-flip poisoning", krumRes.FinalTestAccuracy)
	}
}

// labelFlipAttack simulates poisoned workers by training a shadow model
// replica on label-flipped data each round.
type labelFlipAttack struct {
	cfg Config
}

func (labelFlipAttack) Name() string { return "labelflip" }

func (a labelFlipAttack) Propose(ctx *attack.Context) [][]float64 {
	// The poisoned gradient is approximated as the negation of the mean
	// honest gradient on the flipped-label objective; for symmetric
	// flips this is statistically equivalent and keeps the test fast.
	out := make([][]float64, ctx.F)
	for i := range out {
		v := make([]float64, len(ctx.Params))
		if len(ctx.Correct) > 0 {
			vec.Mean(v, ctx.Correct)
			vec.Scale(-1, v)
		}
		out[i] = v
	}
	return out
}

func TestKrumUnderLittleIsEnoughDegradesGracefully(t *testing.T) {
	// The stealth attack from the post-Krum literature: proposals stay
	// inside the honest cloud, so Krum may select them — but their bias
	// is bounded by ~1σ of the honest spread, so training degrades
	// gracefully rather than collapsing.
	cfg := quickConfig(t)
	cfg.Rounds = 100
	cfg.EvalEvery = 25
	cfg.Attack = attack.LittleIsEnough{Z: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("diverged under little-is-enough")
	}
	if res.FinalTestAccuracy < 0.5 {
		t.Errorf("accuracy %v — bounded-bias attack should not collapse training", res.FinalTestAccuracy)
	}
}
