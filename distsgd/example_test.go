package distsgd_test

import (
	"fmt"
	"log"

	"krum"
	"krum/attack"
	"krum/data"
	"krum/distsgd"
	"krum/model"
)

// Example trains a softmax classifier with 11 workers of which 2 mount
// the omniscient attack, aggregating with Krum — the end-to-end shape
// of every experiment in this repository.
func Example() {
	ds, err := data.NewGaussianMixture(3, 6, 4, 0.5, 1)
	if err != nil {
		log.Fatal(err)
	}
	m, err := model.NewSoftmaxClassifier(6, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := distsgd.Run(distsgd.Config{
		Model:     m,
		Dataset:   ds,
		Rule:      krum.NewKrum(2),
		N:         11,
		F:         2,
		BatchSize: 16,
		Schedule:  krum.ScheduleInverseTStretched(0.5, 0.75, 50),
		Rounds:    120,
		Attack:    attack.Omniscient{Scale: 30},
		Seed:      7,
		EvalEvery: 40,
		EvalBatch: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diverged: %v, accuracy above 0.9: %v\n",
		res.Diverged, res.FinalTestAccuracy > 0.9)
	// Output: diverged: false, accuracy above 0.9: true
}
