package distsgd

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"krum"
	"krum/attack"
	"krum/data"
	"krum/internal/vec"
	"krum/model"
)

// quickConfig returns a small but meaningful training setup: softmax
// classifier on a well separated 3-class mixture.
func quickConfig(t *testing.T) Config {
	t.Helper()
	ds, err := data.NewGaussianMixture(3, 6, 4, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewSoftmaxClassifier(6, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Model:     m,
		Dataset:   ds,
		Rule:      krum.NewKrum(2),
		N:         11,
		F:         2,
		BatchSize: 16,
		Schedule:  krum.ScheduleInverseTStretched(0.5, 0.75, 50),
		Rounds:    60,
		Seed:      7,
		EvalEvery: 20,
		EvalBatch: 400,
	}
}

// TestRunIncrementalBitIdentical is the cross-round cache's contract
// at the training level: the same config with and without Incremental
// produces bit-identical histories and final parameters — the cache
// only changes how much of the distance matrix each round recomputes.
// The crash attack makes the Byzantine proposals constant from round 5
// on, so the cached run must actually take the incremental path (row
// updates observed, fewer full builds than rounds) rather than
// trivially rebuilding every round.
func TestRunIncrementalBitIdentical(t *testing.T) {
	base := quickConfig(t)
	base.Attack = attack.Crash{After: 5}
	base.Rounds = 20
	base.EvalEvery = 5

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	inc := base
	inc.Incremental = true
	builds := vec.MatrixBuildCount()
	rows := vec.MatrixRowUpdateCount()
	cached, err := Run(inc)
	if err != nil {
		t.Fatal(err)
	}
	gotBuilds := vec.MatrixBuildCount() - builds
	gotRows := vec.MatrixRowUpdateCount() - rows
	if gotRows == 0 {
		t.Error("incremental run never recomputed a row: cache path not exercised")
	}
	if gotBuilds >= uint64(base.Rounds) {
		t.Errorf("incremental run built %d matrices over %d rounds: cache never reused", gotBuilds, base.Rounds)
	}

	if !reflect.DeepEqual(plain.FinalParams, cached.FinalParams) {
		t.Error("FinalParams differ between incremental and full recompute")
	}
	if len(plain.History) != len(cached.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(plain.History), len(cached.History))
	}
	for r := range plain.History {
		if plain.History[r] != cached.History[r] {
			t.Errorf("round %d stats differ: %+v vs %+v", r, plain.History[r], cached.History[r])
			break
		}
	}
}

// TestRunScreenedBitIdentical is the screening layer's contract at the
// training level: the same config with and without Screened produces
// bit-identical histories and final parameters — pruning skips
// distance work, never changes a selected index. The Gaussian attack
// keeps a Byzantine population at σ = 200, the regime where the norm
// screen actually prunes, so the run exercises real pruning rather
// than vacuously evaluating everything.
func TestRunScreenedBitIdentical(t *testing.T) {
	base := quickConfig(t)
	base.Attack = attack.Gaussian{Sigma: 200}
	base.Rounds = 20
	base.EvalEvery = 5
	base.TrackSelection = true

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	scr := base
	scr.Screened = true
	prunes := vec.ScreenPruneCount()
	screened, err := Run(scr)
	if err != nil {
		t.Fatal(err)
	}
	if vec.ScreenPruneCount() == prunes {
		t.Error("screened run never pruned a row: screening path not exercised")
	}

	if !reflect.DeepEqual(plain.FinalParams, screened.FinalParams) {
		t.Error("FinalParams differ between screened and dense runs")
	}
	if plain.SelectionTrackedRounds != screened.SelectionTrackedRounds ||
		plain.ByzantineSelectedRounds != screened.ByzantineSelectedRounds {
		t.Errorf("selection tracking differs: %d/%d vs %d/%d",
			plain.ByzantineSelectedRounds, plain.SelectionTrackedRounds,
			screened.ByzantineSelectedRounds, screened.SelectionTrackedRounds)
	}
	if len(plain.History) != len(screened.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(plain.History), len(screened.History))
	}
	for r := range plain.History {
		if plain.History[r] != screened.History[r] {
			t.Errorf("round %d stats differ: %+v vs %+v", r, plain.History[r], screened.History[r])
			break
		}
	}

	// Screening composes with the incremental cache; the combination
	// must also match bit for bit.
	both := scr
	both.Incremental = true
	combined, err := Run(both)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.FinalParams, combined.FinalParams) {
		t.Error("FinalParams differ between screened+incremental and dense runs")
	}
}

func TestRunValidation(t *testing.T) {
	base := quickConfig(t)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil model", mutate: func(c *Config) { c.Model = nil }},
		{name: "nil dataset", mutate: func(c *Config) { c.Dataset = nil }},
		{name: "nil rule", mutate: func(c *Config) { c.Rule = nil }},
		{name: "nil schedule", mutate: func(c *Config) { c.Schedule = nil }},
		{name: "f >= n", mutate: func(c *Config) { c.F = c.N }},
		{name: "negative f", mutate: func(c *Config) { c.F = -1 }},
		{name: "zero rounds", mutate: func(c *Config) { c.Rounds = 0 }},
		{name: "zero batch", mutate: func(c *Config) { c.BatchSize = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestRunKrumNoAttackLearns(t *testing.T) {
	cfg := quickConfig(t)
	cfg.F = 0
	cfg.Rule = krum.NewKrum(0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("benign run diverged")
	}
	if len(res.History) != cfg.Rounds {
		t.Fatalf("history has %d rounds", len(res.History))
	}
	if res.FinalTestAccuracy < 0.9 {
		t.Errorf("final accuracy %v, want ≥ 0.9 on separable mixture", res.FinalTestAccuracy)
	}
	if len(res.FinalParams) != cfg.Model.Dim() {
		t.Error("FinalParams dimension wrong")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Rounds = 20
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(r1.FinalParams, r2.FinalParams, 0) {
		t.Error("same seed produced different final parameters")
	}
	for i := range r1.History {
		if r1.History[i].TrainLoss != r2.History[i].TrainLoss {
			t.Fatalf("round %d train loss differs", i)
		}
	}
}

// The paper's headline contrast, as an integration test: under the
// omniscient attack with f/n ≈ 27%, averaging is destroyed while Krum
// keeps learning.
func TestKrumSurvivesOmniscientAverageDoesNot(t *testing.T) {
	base := quickConfig(t)
	base.Attack = attack.Omniscient{Scale: 30}
	base.Rounds = 120
	base.EvalEvery = 40

	krumCfg := base
	krumCfg.Rule = krum.NewKrum(2)
	krumRes, err := Run(krumCfg)
	if err != nil {
		t.Fatal(err)
	}
	if krumRes.Diverged {
		t.Fatal("krum diverged under omniscient attack")
	}
	if krumRes.FinalTestAccuracy < 0.85 {
		t.Errorf("krum accuracy %v under attack, want ≥ 0.85", krumRes.FinalTestAccuracy)
	}

	avgCfg := base
	avgCfg.Rule = krum.Average{}
	avgRes, err := Run(avgCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Averaging must either diverge outright or end with near-chance
	// accuracy.
	if !avgRes.Diverged && avgRes.FinalTestAccuracy > 0.6 {
		t.Errorf("averaging survived the omniscient attack: acc = %v, diverged = %v",
			avgRes.FinalTestAccuracy, avgRes.Diverged)
	}
}

func TestSelectionTracking(t *testing.T) {
	cfg := quickConfig(t)
	cfg.TrackSelection = true
	cfg.Attack = attack.Gaussian{Sigma: 200}
	cfg.Rounds = 40
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SelectionTrackedRounds != 40 {
		t.Fatalf("tracked %d rounds", res.SelectionTrackedRounds)
	}
	// Krum must essentially never select a σ=200 Gaussian garbage
	// proposal.
	if rate := res.ByzantineSelectionRate(); rate > 0.05 {
		t.Errorf("krum selected Byzantine proposals at rate %v", rate)
	}
}

func TestSelectionRateNaNWhenUntracked(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Rounds = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.ByzantineSelectionRate()) {
		t.Error("untracked selection rate should be NaN")
	}
}

func TestOnRoundHookAndAccuracySeries(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Rounds = 30
	cfg.EvalEvery = 10
	var hooked int
	cfg.OnRound = func(s RoundStats) { hooked++ }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hooked != 30 {
		t.Errorf("OnRound fired %d times", hooked)
	}
	rounds, accs := res.AccuracySeries()
	if len(rounds) != 3 || len(accs) != 3 {
		t.Fatalf("accuracy series %v %v", rounds, accs)
	}
	if rounds[0] != 9 || rounds[1] != 19 || rounds[2] != 29 {
		t.Errorf("eval rounds %v", rounds)
	}
}

func TestRunRejectsMismatchedSource(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Source = fakeSource{n: 3, dim: cfg.Model.Dim()}
	if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
		t.Errorf("mismatched source accepted: %v", err)
	}
}

func TestRunCustomSource(t *testing.T) {
	cfg := quickConfig(t)
	cfg.N, cfg.F = 5, 1
	cfg.Rule = krum.NewKrum(1)
	cfg.EvalEvery = 0
	cfg.Rounds = 10
	cfg.Source = fakeSource{n: 4, dim: cfg.Model.Dim()}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 10 {
		t.Errorf("history %d", len(res.History))
	}
}

// fakeSource returns constant unit gradients.
type fakeSource struct {
	n, dim int
}

func (f fakeSource) Gradients(params []float64) ([][]float64, float64, error) {
	out := make([][]float64, f.n)
	for i := range out {
		g := make([]float64, f.dim)
		vec.Fill(g, 1)
		out[i] = g
	}
	return out, 1, nil
}

func (f fakeSource) N() int   { return f.n }
func (f fakeSource) Dim() int { return f.dim }

// Lemma 3.1 at training level: a single Byzantine worker forces the
// average to a constant huge vector; the run diverges (or is driven to
// garbage), whereas Krum with the same attack stays finite.
func TestLemma31AtTrainingLevel(t *testing.T) {
	cfg := quickConfig(t)
	cfg.N, cfg.F = 11, 1
	cfg.Rounds = 80
	cfg.EvalEvery = 0
	// The takeover solves against uniform averaging weights 1/n.
	weights := make([]float64, cfg.N)
	for i := range weights {
		weights[i] = 1.0 / float64(cfg.N)
	}
	target := make([]float64, cfg.Model.Dim())
	vec.Fill(target, 1e6)
	takeover, err := attack.NewLinearTakeover(target, weights)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Attack = takeover

	avgCfg := cfg
	avgCfg.Rule = krum.Average{}
	avgRes, err := Run(avgCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !avgRes.Diverged {
		// The forced updates of 1e6 should blow up the parameters
		// quickly; if not diverged, the update norms must at least be
		// the forced magnitude.
		if avgRes.History[0].UpdateNorm < 1e5 {
			t.Errorf("takeover did not control the average: update norm %v", avgRes.History[0].UpdateNorm)
		}
	}

	krumCfg := cfg
	krumCfg.Rule = krum.NewKrum(1)
	krumRes, err := Run(krumCfg)
	if err != nil {
		t.Fatal(err)
	}
	if krumRes.Diverged {
		t.Error("krum diverged under the Lemma 3.1 takeover")
	}
}

// TestRunRuleSpec: the registry path — a spec string with cluster-shape
// defaults must train identically to the explicitly constructed rule.
func TestRunRuleSpec(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Attack = attack.Gaussian{Sigma: 100}
	explicit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	specCfg := quickConfig(t)
	specCfg.Attack = attack.Gaussian{Sigma: 100}
	specCfg.Rule = nil
	specCfg.RuleSpec = "krum" // f defaults to cfg.F via SpecContext
	viaSpec, err := Run(specCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(explicit.FinalParams, viaSpec.FinalParams, 0) {
		t.Error("RuleSpec training diverged from explicit rule training")
	}
}

func TestRunRuleSpecErrors(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Rule = nil
	cfg.RuleSpec = "nosuchrule"
	if _, err := Run(cfg); !errors.Is(err, krum.ErrBadParameter) {
		t.Errorf("unknown spec error = %v, want ErrBadParameter", err)
	}

	both := quickConfig(t)
	both.RuleSpec = "krum" // Rule is already set
	if _, err := Run(both); !errors.Is(err, ErrConfig) {
		t.Errorf("Rule+RuleSpec error = %v, want ErrConfig", err)
	}
}

// TestRunAttackAndScheduleSpecs: the registry paths for the remaining
// axes — spec strings must train identically to explicitly constructed
// values, mirroring the RuleSpec contract.
func TestRunAttackAndScheduleSpecs(t *testing.T) {
	explicitCfg := quickConfig(t)
	explicitCfg.Attack = attack.Gaussian{Sigma: 100}
	explicit, err := Run(explicitCfg)
	if err != nil {
		t.Fatal(err)
	}

	specCfg := quickConfig(t)
	specCfg.Attack = nil
	specCfg.AttackSpec = "gaussian(sigma=100)"
	specCfg.Schedule = nil
	specCfg.ScheduleSpec = "inverset(gamma=0.5,power=0.75,t0=50)"
	viaSpec, err := Run(specCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(explicit.FinalParams, viaSpec.FinalParams, 0) {
		t.Error("AttackSpec/ScheduleSpec training diverged from explicit construction")
	}
}

func TestRunAttackAndScheduleSpecErrors(t *testing.T) {
	cfg := quickConfig(t)
	cfg.AttackSpec = "nosuchattack"
	if _, err := Run(cfg); !errors.Is(err, attack.ErrBadSpec) {
		t.Errorf("unknown attack spec error = %v, want attack.ErrBadSpec", err)
	}

	both := quickConfig(t)
	both.Attack = attack.Gaussian{Sigma: 100}
	both.AttackSpec = "gaussian"
	if _, err := Run(both); !errors.Is(err, ErrConfig) {
		t.Errorf("Attack+AttackSpec error = %v, want ErrConfig", err)
	}

	sched := quickConfig(t)
	sched.Schedule = nil
	sched.ScheduleSpec = "inverset(gamma=0)"
	if _, err := Run(sched); err == nil {
		t.Error("malformed schedule spec accepted")
	}

	bothSched := quickConfig(t)
	bothSched.ScheduleSpec = "const(gamma=0.1)" // Schedule is already set
	if _, err := Run(bothSched); !errors.Is(err, ErrConfig) {
		t.Errorf("Schedule+ScheduleSpec error = %v, want ErrConfig", err)
	}
}

// TestFinalParamsIsACopy: mutating Result.FinalParams must not affect
// engine-owned state — two runs interleaved with mutation agree.
func TestFinalParamsIsACopy(t *testing.T) {
	cfg := quickConfig(t)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	saved := vec.Clone(r1.FinalParams)
	for i := range r1.FinalParams {
		r1.FinalParams[i] = math.Inf(1)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.ApproxEqual(saved, r2.FinalParams, 0) {
		t.Error("mutating FinalParams of one run perturbed a fresh run")
	}
}

// TestFinalTestMetricsNaNWhenNeverEvaluated: EvalEvery = 0 leaves the
// final test metrics as the NaN sentinel (not a misleading zero).
func TestFinalTestMetricsNaNWhenNeverEvaluated(t *testing.T) {
	cfg := quickConfig(t)
	cfg.EvalEvery = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.FinalTestAccuracy) || !math.IsNaN(res.FinalTestLoss) {
		t.Errorf("never-evaluated metrics = (%v, %v), want NaN sentinels",
			res.FinalTestAccuracy, res.FinalTestLoss)
	}

	cfg.EvalEvery = 20
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FinalTestAccuracy) || math.IsNaN(res.FinalTestLoss) {
		t.Error("evaluated run still reports NaN sentinels")
	}
}
