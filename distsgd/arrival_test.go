package distsgd

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"krum/attack"
	"krum/internal/arrival"
	"krum/internal/vec"
)

// stableBytes encodes a Result through the store's stable JSON
// serialization — the strongest equality the repo has (bit-level for
// every float, including FinalParams' IEEE-754 payloads).
func stableBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunArrivalSyncByteIdentical is the tentpole differential: the
// async machinery configured with arrival "sync" (or any τ = 0 spec,
// which the registry canonicalizes to Sync) produces byte-identical
// results to the legacy synchronous path, with and without the
// incremental cache — the new axis cannot silently perturb any stored
// result. The config exercises every moving part the async path
// touches: a stateful RNG attack, selection tracking, and periodic
// evaluation.
func TestRunArrivalSyncByteIdentical(t *testing.T) {
	base := quickConfig(t)
	base.Attack = attack.Gaussian{Sigma: 200}
	base.Rounds = 30
	base.EvalEvery = 10
	base.TrackSelection = true

	for _, incremental := range []bool{false, true} {
		legacy := base
		legacy.Incremental = incremental
		want, err := Run(legacy)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes := stableBytes(t, want)
		for _, spec := range []string{"sync", "bounded(tau=0)", "bernoulli(p=0.5,tau=0)"} {
			async := legacy
			async.ArrivalSpec = spec
			got, err := Run(async)
			if err != nil {
				t.Fatalf("arrival %q: %v", spec, err)
			}
			if !bytes.Equal(stableBytes(t, got), wantBytes) {
				t.Errorf("incremental=%v arrival=%q: result bytes differ from the synchronous path", incremental, spec)
			}
		}
	}
}

// TestRunAsyncIncrementalBitIdentical extends the PR-3 cache contract
// to asynchronous traffic: under a bernoulli arrival process the
// cached run is bit-identical to the uncached one, while actually
// taking the incremental path (row updates observed, fewer builds
// than rounds) — async replay is exactly the steady-state partial-
// update workload the cache was built for.
func TestRunAsyncIncrementalBitIdentical(t *testing.T) {
	base := quickConfig(t)
	base.Attack = attack.Gaussian{Sigma: 200}
	base.Rounds = 40
	base.EvalEvery = 10
	base.TrackSelection = true
	base.ArrivalSpec = "bernoulli(p=0.4,tau=6)"

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	inc := base
	inc.Incremental = true
	builds := vec.MatrixBuildCount()
	rows := vec.MatrixRowUpdateCount()
	cached, err := Run(inc)
	if err != nil {
		t.Fatal(err)
	}
	if got := vec.MatrixRowUpdateCount() - rows; got == 0 {
		t.Error("async incremental run never recomputed a row: cache path not exercised")
	}
	if got := vec.MatrixBuildCount() - builds; got >= uint64(base.Rounds) {
		t.Errorf("async incremental run built %d matrices over %d rounds: cache never reused", got, base.Rounds)
	}
	if !bytes.Equal(stableBytes(t, plain), stableBytes(t, cached)) {
		t.Error("async result bytes differ between incremental and full recompute")
	}
}

// TestRunAsyncRowUpdateCountMatchesTrace audits the honest change-set
// property: over a full async run with a distance-consuming rule, the
// global MatrixRowUpdateCount delta equals the sum of the arrival
// process's changed-worker counts on exactly the rounds where the
// cache takes the incremental path (0 < changed < n after the cold
// start), and MatrixBuildCount accounts for the rest. The expected
// trace is replayed independently via arrival.Process.NewTrace — the
// same pure function of (Seed, N) the engine used.
func TestRunAsyncRowUpdateCountMatchesTrace(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Rounds = 50
	cfg.EvalEvery = 0
	cfg.Incremental = true
	cfg.ArrivalSpec = "bernoulli(p=0.4,tau=6)"

	proc, err := arrival.Parse(cfg.ArrivalSpec)
	if err != nil {
		t.Fatal(err)
	}
	tr := proc.NewTrace(cfg.Seed, cfg.N)
	var wantRows, wantBuilds uint64
	for round := 0; round < cfg.Rounds; round++ {
		c := len(tr.Next())
		switch {
		case round == 0 || c >= cfg.N:
			wantBuilds++
		case c > 0:
			wantRows += uint64(c)
		}
	}

	builds := vec.MatrixBuildCount()
	rows := vec.MatrixRowUpdateCount()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("run diverged; the audit assumes all rounds executed")
	}
	if got := vec.MatrixRowUpdateCount() - rows; got != wantRows {
		t.Errorf("row updates = %d, want %d (sum of arrival change-sets)", got, wantRows)
	}
	if got := vec.MatrixBuildCount() - builds; got != wantBuilds {
		t.Errorf("matrix builds = %d, want %d (cold start + full-arrival rounds)", got, wantBuilds)
	}
}

// TestRunAsyncDiffersFromSync is the sanity complement of the
// differential: a genuinely asynchronous process (τ > 0 with real
// straggling) must NOT reproduce the synchronous result — otherwise
// the axis is dead and every async cell would waste a store slot.
func TestRunAsyncDiffersFromSync(t *testing.T) {
	base := quickConfig(t)
	base.Rounds = 30
	sync, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	async := base
	async.ArrivalSpec = "bounded(tau=3)"
	stale, err := Run(async)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(sync.FinalParams, stale.FinalParams) {
		t.Error("bounded(tau=3) produced identical FinalParams to the synchronous run")
	}
}

// TestRunAsyncDamped: Kardam damping changes the trajectory relative
// to pure replay, and the damped run keeps the incremental-cache
// bit-identity contract (damping declares the full change-set, so the
// cache rebuilds instead of serving stale rows).
func TestRunAsyncDamped(t *testing.T) {
	base := quickConfig(t)
	base.Rounds = 30
	base.ArrivalSpec = "bounded(tau=3)"
	replay, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	damped := base
	damped.ArrivalSpec = "bounded(tau=3,damp=0.5)"
	d1, err := Run(damped)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(replay.FinalParams, d1.FinalParams) {
		t.Error("damp=0.5 produced identical FinalParams to pure replay")
	}
	dampedInc := damped
	dampedInc.Incremental = true
	d2, err := Run(dampedInc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stableBytes(t, d1), stableBytes(t, d2)) {
		t.Error("damped result bytes differ between incremental and full recompute")
	}
}

// TestRunBadArrivalSpec: a malformed arrival spec is rejected up front
// with the registry's sentinel.
func TestRunBadArrivalSpec(t *testing.T) {
	cfg := quickConfig(t)
	cfg.ArrivalSpec = "bounded(tau=-1)"
	if _, err := Run(cfg); !errors.Is(err, arrival.ErrBadArrival) {
		t.Fatalf("error = %v, want ErrBadArrival", err)
	}
}
