package distsgd

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// sampleResult builds a Result exercising every serialization hazard:
// non-finite history floats, NaN sentinels, a diverged parameter
// vector with NaN/±Inf/-0 entries, and NaN payload bits.
func sampleResult() *Result {
	return &Result{
		History: []RoundStats{
			{Round: 0, TrainLoss: 1.25, UpdateNorm: 3.5, LearningRate: 0.1},
			{Round: 1, TrainLoss: math.Inf(1), UpdateNorm: math.NaN(), LearningRate: 0.05,
				ByzantineChosen: true, Evaluated: true, TestAccuracy: 0.875, TestLoss: math.Inf(-1)},
		},
		FinalParams: []float64{
			1.5, -0.0, math.NaN(), math.Inf(1), math.Inf(-1),
			math.Float64frombits(0x7FF8_0000_0000_0001), // NaN with payload
			0.1, // not exactly representable — exercises shortest-repr
		},
		Diverged:                true,
		DivergedRound:           1,
		ByzantineSelectedRounds: 1,
		SelectionTrackedRounds:  2,
		FinalTestAccuracy:       math.NaN(),
		FinalTestLoss:           math.NaN(),
	}
}

// TestResultJSONRoundTripBitExact checks the store's core contract:
// Marshal ∘ Unmarshal ∘ Marshal is the identity on bytes, and the
// decoded FinalParams are bit-identical to the original (NaN payloads
// and signed zeros included).
func TestResultJSONRoundTripBitExact(t *testing.T) {
	orig := sampleResult()
	enc1, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Result
	if err := json.Unmarshal(enc1, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	enc2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("encoding not stable:\n first: %s\nsecond: %s", enc1, enc2)
	}
	if len(back.FinalParams) != len(orig.FinalParams) {
		t.Fatalf("FinalParams length %d, want %d", len(back.FinalParams), len(orig.FinalParams))
	}
	for i := range orig.FinalParams {
		if math.Float64bits(back.FinalParams[i]) != math.Float64bits(orig.FinalParams[i]) {
			t.Errorf("FinalParams[%d] bits %016x, want %016x",
				i, math.Float64bits(back.FinalParams[i]), math.Float64bits(orig.FinalParams[i]))
		}
	}
	if !back.Diverged || back.DivergedRound != 1 {
		t.Errorf("divergence flags lost: %+v", back)
	}
	if !math.IsNaN(back.FinalTestAccuracy) || !math.IsNaN(back.FinalTestLoss) {
		t.Errorf("NaN sentinels lost: acc=%v loss=%v", back.FinalTestAccuracy, back.FinalTestLoss)
	}
	if len(back.History) != 2 {
		t.Fatalf("history length %d, want 2", len(back.History))
	}
	if !math.IsInf(back.History[1].TrainLoss, 1) || !math.IsNaN(back.History[1].UpdateNorm) {
		t.Errorf("non-finite history floats lost: %+v", back.History[1])
	}
	if !math.IsInf(back.History[1].TestLoss, -1) {
		t.Errorf("-Inf test loss lost: %v", back.History[1].TestLoss)
	}
	if !back.History[1].ByzantineChosen || !back.History[1].Evaluated {
		t.Errorf("bool flags lost: %+v", back.History[1])
	}
}

// TestResultJSONFromLiveRun serializes an actual training result —
// including a NaN never-evaluated sentinel — and checks exact
// round-trip of the history floats.
func TestResultJSONFromLiveRun(t *testing.T) {
	cfg := quickConfig(t) // helper from distsgd_test.go
	cfg.Rounds = 15
	cfg.EvalEvery = 0 // FinalTestAccuracy/Loss stay NaN — the sentinel path
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal live result: %v", err)
	}
	var back Result
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatalf("unmarshal live result: %v", err)
	}
	if len(back.History) != len(res.History) {
		t.Fatalf("history length %d, want %d", len(back.History), len(res.History))
	}
	for i := range res.History {
		if back.History[i] != res.History[i] {
			t.Errorf("history[%d] = %+v, want %+v", i, back.History[i], res.History[i])
		}
	}
	for i := range res.FinalParams {
		if math.Float64bits(back.FinalParams[i]) != math.Float64bits(res.FinalParams[i]) {
			t.Errorf("FinalParams[%d] differs after round-trip", i)
		}
	}
}

// TestJSONFloatRejectsBadString ensures corrupted store records fail
// loudly instead of decoding to garbage.
func TestJSONFloatRejectsBadString(t *testing.T) {
	var f jsonFloat
	if err := json.Unmarshal([]byte(`"Infinity"`), &f); err == nil {
		t.Fatal(`"Infinity" decoded without error; want rejection`)
	}
	var r Result
	if err := json.Unmarshal([]byte(`{"final_params_b64":"!!!"}`), &r); err == nil {
		t.Fatal("bad base64 decoded without error; want rejection")
	}
}
