// Bounded-staleness asynchronous execution (ROADMAP item 5): the
// round loop delegates proposal assembly to an asyncState when
// Config.ArrivalSpec is set. Each round the arrival trace elects a
// subset of workers to submit fresh proposals; every other worker's
// slot replays its last submitted proposal (optionally damped by the
// Kardam factor 1/(1+λ·s) for staleness s), and the trace force-
// arrives any worker about to exceed the τ bound.
//
// Two invariants are load-bearing and pinned by tests:
//
//  1. Purity — the arrival trace derives from (Config.Seed, N) alone
//     (see arrival.Process.NewTrace), never from the run's root RNG or
//     wall-clock, so a cell's result is a pure function of its Spec on
//     any machine and any topology.
//  2. Sync differential — ArrivalSpec "sync" (or any τ = 0 spec) runs
//     through this machinery yet is byte-identical to the synchronous
//     path: value copies preserve bits, the attack sees the same
//     Correct values and consumes the same RNG stream, and no extra
//     root-RNG draw happens. An async mode that silently perturbed
//     existing results would invalidate every stored sync cell.
package distsgd

import (
	"fmt"

	"krum/attack"
	"krum/internal/arrival"
	"krum/internal/vec"
)

// asyncState holds one run's bounded-staleness machinery: the arrival
// trace plus the per-worker replay buffers.
type asyncState struct {
	proc  arrival.Process
	trace *arrival.Trace
	n, f  int
	damp  float64
	// last[i] is an owned copy of worker i's most recent submitted
	// proposal — the value replayed while i straggles.
	last [][]float64
	// scratch holds damped copies (only allocated when damp > 0, so
	// the undamped mode replays last[i] by reference and the
	// incremental cache sees bit-stable rows).
	scratch [][]float64
	// changedAll is the 0..n-1 change-set declared when damping is on:
	// the factor depends on current staleness, so every stale row is
	// rescaled every round.
	changedAll []int
}

func newAsyncState(proc arrival.Process, seed uint64, n, f, dim int) *asyncState {
	a := &asyncState{
		proc:  proc,
		trace: proc.NewTrace(seed, n),
		n:     n,
		f:     f,
		damp:  proc.Damp(),
	}
	a.last = make([][]float64, n)
	for i := range a.last {
		a.last[i] = make([]float64, dim)
	}
	if a.damp > 0 {
		a.scratch = make([][]float64, n)
		for i := range a.scratch {
			a.scratch[i] = make([]float64, dim)
		}
		a.changedAll = make([]int, n)
		for i := range a.changedAll {
			a.changedAll[i] = i
		}
	}
	return a
}

// round assembles the effective proposals of round t and returns the
// honest change-set for RoundContext.SetChanged (ascending, freshly
// owned by the caller). correct holds this round's fresh gradients
// from every correct worker — they are all computed regardless of
// arrival so the per-worker data RNG streams match the synchronous
// run exactly; non-arriving workers' fresh values are simply never
// submitted. The attack runs every round (identical attackRNG
// consumption) against the effective correct proposals — the
// full-knowledge threat model under asynchrony: the adversary sees
// what the server is about to see, and its own Byzantine submissions
// are subject to the same arrival process as everyone else's.
func (a *asyncState) round(t int, proposals, correct [][]float64, atk attack.Strategy, params []float64, attackRNG *vec.RNG) ([]int, error) {
	arrivals := a.trace.Next()
	nc := a.n - a.f
	for _, i := range arrivals {
		if i < nc {
			copy(a.last[i], correct[i])
		}
	}
	for i := 0; i < nc; i++ {
		proposals[i] = a.effective(i)
	}
	if a.f > 0 {
		ctx := &attack.Context{
			Round:   t,
			Params:  params,
			Correct: proposals[:nc],
			F:       a.f,
			RNG:     attackRNG,
		}
		byz := atk.Propose(ctx)
		if len(byz) != a.f {
			return nil, fmt.Errorf("attack returned %d proposals, want %d: %w", len(byz), a.f, ErrConfig)
		}
		for _, i := range arrivals {
			if i >= nc {
				copy(a.last[i], byz[i-nc])
			}
		}
		for i := nc; i < a.n; i++ {
			proposals[i] = a.effective(i)
		}
	}
	if a.damp > 0 {
		return a.changedAll, nil
	}
	return arrivals, nil
}

// effective returns worker i's proposal as the server aggregates it
// this round: the replay buffer itself when fresh or undamped, a
// scaled copy otherwise.
func (a *asyncState) effective(i int) []float64 {
	factor := arrival.DampFactor(a.damp, a.trace.Staleness(i))
	if factor == 1 {
		return a.last[i]
	}
	dst := a.scratch[i]
	for j, v := range a.last[i] {
		dst[j] = factor * v
	}
	return dst
}
