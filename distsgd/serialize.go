// Stable JSON serialization for Result and RoundStats — the wire and
// at-rest format used by the scenario result store (scenario/store)
// and the krum-scenariod service.
//
// The encoding is designed around two constraints plain encoding/json
// cannot meet:
//
//  1. Training outcomes legitimately contain non-finite floats —
//     FinalTestAccuracy/FinalTestLoss use a NaN sentinel for "never
//     evaluated", and diverged runs (the EXPECTED outcome for linear
//     rules under attack, Lemma 3.1) carry NaN/±Inf in FinalParams and
//     the round statistics. JSON has no literal for those, so every
//     float field encodes through jsonFloat (non-finite values become
//     the quoted strings "NaN", "+Inf", "-Inf") and FinalParams is
//     encoded as base64 of its raw little-endian IEEE-754 bits.
//  2. The result store promises cache hits byte-identical to a cold
//     run, so the encoding must round-trip exactly: finite floats use
//     Go's shortest-round-trip formatting, and FinalParams' bit-level
//     encoding preserves even NaN payloads and signed zeros. For any
//     Result r, Marshal(Unmarshal(Marshal(r))) == Marshal(r).
//
// The field set is part of the store's compatibility surface: any
// change to it (or to the semantics of a field) must be accompanied by
// a bump of store.Version so stale entries are recomputed, never
// served.
package distsgd

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// jsonFloat is a float64 that survives JSON: finite values marshal as
// ordinary numbers (shortest representation that round-trips exactly),
// NaN and the infinities marshal as the quoted strings "NaN", "+Inf"
// and "-Inf".
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = jsonFloat(math.NaN())
		case "+Inf":
			*f = jsonFloat(math.Inf(1))
		case "-Inf":
			*f = jsonFloat(math.Inf(-1))
		default:
			return fmt.Errorf("non-finite float string %q (want \"NaN\", \"+Inf\" or \"-Inf\")", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// roundStatsJSON mirrors RoundStats with JSON-safe floats.
type roundStatsJSON struct {
	Round           int       `json:"round"`
	TrainLoss       jsonFloat `json:"train_loss"`
	UpdateNorm      jsonFloat `json:"update_norm"`
	LearningRate    jsonFloat `json:"learning_rate"`
	ByzantineChosen bool      `json:"byzantine_chosen,omitempty"`
	Evaluated       bool      `json:"evaluated,omitempty"`
	TestAccuracy    jsonFloat `json:"test_accuracy"`
	TestLoss        jsonFloat `json:"test_loss"`
}

// MarshalJSON implements json.Marshaler; see the file comment for the
// format contract.
func (s RoundStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(roundStatsJSON{
		Round:           s.Round,
		TrainLoss:       jsonFloat(s.TrainLoss),
		UpdateNorm:      jsonFloat(s.UpdateNorm),
		LearningRate:    jsonFloat(s.LearningRate),
		ByzantineChosen: s.ByzantineChosen,
		Evaluated:       s.Evaluated,
		TestAccuracy:    jsonFloat(s.TestAccuracy),
		TestLoss:        jsonFloat(s.TestLoss),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *RoundStats) UnmarshalJSON(b []byte) error {
	var m roundStatsJSON
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	*s = RoundStats{
		Round:           m.Round,
		TrainLoss:       float64(m.TrainLoss),
		UpdateNorm:      float64(m.UpdateNorm),
		LearningRate:    float64(m.LearningRate),
		ByzantineChosen: m.ByzantineChosen,
		Evaluated:       m.Evaluated,
		TestAccuracy:    float64(m.TestAccuracy),
		TestLoss:        float64(m.TestLoss),
	}
	return nil
}

// resultJSON mirrors Result. FinalParams travels as base64-encoded raw
// little-endian float64 bits so that diverged parameter vectors
// (containing NaN/±Inf) and exact bit patterns survive the trip.
type resultJSON struct {
	History                 []RoundStats `json:"history"`
	FinalParamsB64          string       `json:"final_params_b64"`
	Diverged                bool         `json:"diverged,omitempty"`
	DivergedRound           int          `json:"diverged_round,omitempty"`
	ByzantineSelectedRounds int          `json:"byzantine_selected_rounds,omitempty"`
	SelectionTrackedRounds  int          `json:"selection_tracked_rounds,omitempty"`
	FinalTestAccuracy       jsonFloat    `json:"final_test_accuracy"`
	FinalTestLoss           jsonFloat    `json:"final_test_loss"`
	Kernel                  string       `json:"kernel,omitempty"`
}

// MarshalJSON implements json.Marshaler; see the file comment for the
// format contract (bit-exact round-trip, non-finite floats as quoted
// strings, FinalParams as base64 of raw IEEE-754 bits).
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		History:                 r.History,
		FinalParamsB64:          encodeFloats(r.FinalParams),
		Diverged:                r.Diverged,
		DivergedRound:           r.DivergedRound,
		ByzantineSelectedRounds: r.ByzantineSelectedRounds,
		SelectionTrackedRounds:  r.SelectionTrackedRounds,
		FinalTestAccuracy:       jsonFloat(r.FinalTestAccuracy),
		FinalTestLoss:           jsonFloat(r.FinalTestLoss),
		Kernel:                  r.Kernel,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Result) UnmarshalJSON(b []byte) error {
	var m resultJSON
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	params, err := decodeFloats(m.FinalParamsB64)
	if err != nil {
		return fmt.Errorf("final_params_b64: %w", err)
	}
	*r = Result{
		History:                 m.History,
		FinalParams:             params,
		Diverged:                m.Diverged,
		DivergedRound:           m.DivergedRound,
		ByzantineSelectedRounds: m.ByzantineSelectedRounds,
		SelectionTrackedRounds:  m.SelectionTrackedRounds,
		FinalTestAccuracy:       float64(m.FinalTestAccuracy),
		FinalTestLoss:           float64(m.FinalTestLoss),
		Kernel:                  m.Kernel,
	}
	return nil
}

// encodeFloats packs a float64 slice as base64(little-endian IEEE-754
// bits) — bit-exact, NaN payloads and signed zeros included.
func encodeFloats(v []float64) string {
	buf := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeFloats reverses encodeFloats. An empty string decodes to nil.
func decodeFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("encoded length %d is not a multiple of 8", len(buf))
	}
	v := make([]float64, len(buf)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return v, nil
}
