// Package distsgd implements the paper's distributed learning protocol
// (Section 2): a reliable parameter server executing synchronous rounds
// against n workers, f of which are Byzantine. Each round the server
// broadcasts the parameter vector, collects the n proposed update
// vectors (correct workers return mini-batch gradient estimates;
// Byzantine proposals come from an attack.Strategy with the paper's
// full-knowledge threat model), applies the configured choice function
// F, and performs the SGD step x_{t+1} = x_t − γ_t·F(V_1, ..., V_n).
//
// The engine is substrate-agnostic: correct gradients come from a
// GradientSource, which is an in-process concurrent worker pool by
// default (package sim) and a real TCP cluster when driven through
// package transport's ServerPool.
package distsgd

import (
	"errors"
	"fmt"
	"math"

	"krum/attack"
	"krum/data"
	"krum/internal/arrival"
	"krum/internal/core"
	"krum/internal/sgd"
	"krum/internal/sim"
	"krum/internal/vec"
	"krum/model"
)

// ErrConfig is returned for invalid training configurations.
var ErrConfig = errors.New("distsgd: bad configuration")

// GradientSource produces the correct workers' proposals for one round.
// It is satisfied by *sim.Pool and by transport.ServerPool.
type GradientSource interface {
	// Gradients broadcasts params and returns one gradient estimate per
	// correct worker plus the mean training loss. Returned slices are
	// only valid until the next call.
	Gradients(params []float64) ([][]float64, float64, error)
	// N returns the number of correct workers.
	N() int
	// Dim returns the parameter dimension.
	Dim() int
}

// RoundStats records one synchronous round.
type RoundStats struct {
	// Round is the round index t (0-based).
	Round int
	// TrainLoss is the mean mini-batch loss reported by correct
	// workers at x_t.
	TrainLoss float64
	// UpdateNorm is ‖F(V_1..V_n)‖ — the aggregated step direction
	// magnitude.
	UpdateNorm float64
	// LearningRate is γ_t.
	LearningRate float64
	// ByzantineChosen reports whether a selection-based rule picked a
	// Byzantine proposal this round (only meaningful when the engine
	// tracks selection; see Config.TrackSelection).
	ByzantineChosen bool
	// Evaluated reports whether the test metrics below are valid.
	Evaluated bool
	// TestAccuracy and TestLoss are held-out metrics at x_{t+1}.
	TestAccuracy float64
	// TestLoss is the held-out loss at x_{t+1}.
	TestLoss float64
}

// Result is the outcome of a training run.
type Result struct {
	// History holds one entry per executed round.
	History []RoundStats
	// FinalParams is a defensive copy of x_T: mutating it does not
	// affect any engine-owned buffer.
	FinalParams []float64
	// Diverged reports that parameters left the finite range and the
	// run stopped early (the expected outcome for linear rules under
	// attack — Lemma 3.1 made operational).
	Diverged bool
	// DivergedRound is the round at which divergence was detected
	// (valid only when Diverged).
	DivergedRound int
	// ByzantineSelectedRounds counts rounds in which a selection rule
	// chose a Byzantine proposal.
	ByzantineSelectedRounds int
	// SelectionTrackedRounds counts rounds where selection was
	// observed (denominator for the rate).
	SelectionTrackedRounds int
	// FinalTestAccuracy and FinalTestLoss hold the last evaluation.
	// They are NaN when the run never evaluated (EvalEvery = 0, or
	// divergence before the first evaluation round) — the same sentinel
	// convention as ByzantineSelectionRate.
	FinalTestAccuracy float64
	// FinalTestLoss is the held-out loss at the last evaluation (NaN
	// when never evaluated).
	FinalTestLoss float64
	// Kernel is the accumulation-order family (vec.Tier.Order) the run's
	// distance kernels used — "pair2" or "fma4". Runs under the same
	// family are bit-reproducible against each other; across families
	// only norm-relative agreement holds (see internal/vec/gram.go), so
	// anything comparing Results bit-for-bit must first compare Kernels.
	Kernel string
}

// Config parameterizes Run.
type Config struct {
	// Model is the architecture trained; the engine owns a clone, the
	// caller's instance is not mutated.
	Model model.Model
	// Dataset is the sample distribution used by correct workers and
	// for held-out evaluation.
	Dataset data.Dataset
	// Rule is the parameter server's choice function (krum.Krum,
	// krum.Average, ...). Leave nil and set RuleSpec to construct it
	// from the registry instead.
	Rule core.Rule
	// RuleSpec constructs Rule through the central registry
	// (core.ParseRuleIn) with the cluster shape as defaults — e.g.
	// "krum", "multikrum(m=5)", "bulyan(f=2)". Exactly one of Rule and
	// RuleSpec must be set.
	RuleSpec string
	// AttackSpec constructs Attack through the attack registry
	// (attack.Parse) — e.g. "gaussian(sigma=200)", "omniscient". At
	// most one of Attack and AttackSpec may be set; both empty means no
	// attack.
	AttackSpec string
	// ScheduleSpec constructs Schedule through the schedule registry
	// (sgd.ParseSchedule) — e.g. "inverset(gamma=0.5,power=0.75,t0=200)".
	// Exactly one of Schedule and ScheduleSpec must be set.
	ScheduleSpec string
	// Parallel is the number of goroutines used for the shared
	// per-round distance matrix (0 = serial); see
	// vec.NewDistanceMatrixParallel for the d ≫ n crossover.
	Parallel int
	// Incremental carries the distance matrix across rounds through the
	// engine's RoundCache: each round the engine recomputes only the
	// rows of proposals that actually changed (exact comparison against
	// the cached copies), turning the steady-state distance cost from
	// O(n²·d) into O(c·n·d) for c changed proposals. Results are
	// bit-identical with or without the flag — reused cells equal what
	// a rebuild would recompute — so this is purely a time/space trade:
	// the cache retains O(n·d + n²) memory and pays an O(n·d) diff per
	// distance-consuming round (the diff runs lazily, when a rule first
	// asks for the matrix), which only pays off when some workers replay proposals
	// (crashed/stalled workers, replay attacks, frozen shards). The
	// cache is bypassed (full rebuild) on the first round, on a shape
	// change, and when every proposal changed.
	Incremental bool
	// Screened routes Krum/Multi-Krum selection through the engine's
	// norm + triangle-inequality screening (vec.Screener): candidate
	// rows whose score lower bound exceeds the running selection
	// threshold are pruned without computing their distances, and every
	// surviving row is re-checked exactly, so results are bit-identical
	// with or without the flag. Worthwhile at large n, where pruning
	// attacks the n² inner-product bill itself; composes with
	// Incremental (the cached screener repairs only changed rows'
	// bounds between rounds).
	Screened bool
	// ArrivalSpec selects the bounded-staleness asynchronous mode
	// through the arrival registry (arrival.Parse) — e.g.
	// "bounded(tau=3)" or "bernoulli(p=0.5,tau=8,damp=0.1)". Each
	// round only the workers elected by the (seed-derived,
	// deterministic) arrival trace submit fresh proposals; the rest
	// replay their last submission, Kardam-damped when the spec sets
	// damp, with lag hard-capped at tau. Empty means the classic
	// synchronous protocol; "sync" (or any tau=0 spec) runs through
	// the async machinery but is byte-identical to the synchronous
	// path — the differential tests in arrival_test.go pin this.
	ArrivalSpec string
	// N is the total number of workers; F of them are Byzantine
	// (0 ≤ F < N).
	N, F int
	// BatchSize is each correct worker's mini-batch size.
	BatchSize int
	// Schedule is the learning-rate schedule γ_t.
	Schedule sgd.Schedule
	// Rounds is the number of synchronous rounds T.
	Rounds int
	// Attack generates Byzantine proposals; nil defaults to
	// attack.None{} (Byzantine slots behave correctly).
	Attack attack.Strategy
	// Seed drives every random choice in the run.
	Seed uint64
	// EvalEvery evaluates held-out metrics every that many rounds
	// (and always on the last round); 0 disables evaluation.
	EvalEvery int
	// EvalBatch is the held-out evaluation sample size; 0 means 512.
	EvalBatch int
	// TrackSelection additionally queries selection-based rules for
	// the chosen indices each round to build Byzantine-selection
	// histograms. The selection pass shares the round's memoized
	// distance matrix with aggregation, so the O(n²·d) cost is paid
	// once; only the O(n²) score extraction runs twice.
	TrackSelection bool
	// Source overrides the default in-process pool of N−F workers —
	// used to train over the TCP substrate. When set, Source.N() must
	// equal N−F.
	Source GradientSource
	// OnRound, when non-nil, observes every RoundStats as it is
	// produced (streaming output in the experiment binaries).
	OnRound func(RoundStats)
}

func (c *Config) validate() error {
	if c.Model == nil {
		return fmt.Errorf("nil model: %w", ErrConfig)
	}
	if c.Dataset == nil {
		return fmt.Errorf("nil dataset: %w", ErrConfig)
	}
	if c.Rule == nil {
		return fmt.Errorf("nil rule: %w", ErrConfig)
	}
	if c.Schedule == nil {
		return fmt.Errorf("nil schedule: %w", ErrConfig)
	}
	if c.N < 1 || c.F < 0 || c.F >= c.N {
		return fmt.Errorf("n = %d, f = %d (need 0 ≤ f < n): %w", c.N, c.F, ErrConfig)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("rounds = %d: %w", c.Rounds, ErrConfig)
	}
	if c.Source == nil && c.BatchSize < 1 {
		return fmt.Errorf("batch size = %d: %w", c.BatchSize, ErrConfig)
	}
	if c.Source != nil && c.Source.N() != c.N-c.F {
		return fmt.Errorf("source has %d workers, want n−f = %d: %w", c.Source.N(), c.N-c.F, ErrConfig)
	}
	return nil
}

// Run executes the synchronous training protocol and returns the full
// round history.
func Run(cfg Config) (*Result, error) {
	if cfg.Rule != nil && cfg.RuleSpec != "" {
		return nil, fmt.Errorf("both Rule and RuleSpec set (%q): %w", cfg.RuleSpec, ErrConfig)
	}
	if cfg.Rule == nil && cfg.RuleSpec != "" {
		rule, err := core.ParseRuleIn(core.SpecContext{N: cfg.N, F: cfg.F}, cfg.RuleSpec)
		if err != nil {
			return nil, fmt.Errorf("rule spec %q: %w", cfg.RuleSpec, err)
		}
		cfg.Rule = rule
	}
	if cfg.Attack != nil && cfg.AttackSpec != "" {
		return nil, fmt.Errorf("both Attack and AttackSpec set (%q): %w", cfg.AttackSpec, ErrConfig)
	}
	if cfg.Attack == nil && cfg.AttackSpec != "" {
		atk, err := attack.Parse(cfg.AttackSpec)
		if err != nil {
			return nil, fmt.Errorf("attack spec %q: %w", cfg.AttackSpec, err)
		}
		cfg.Attack = atk
	}
	if cfg.Schedule != nil && cfg.ScheduleSpec != "" {
		return nil, fmt.Errorf("both Schedule and ScheduleSpec set (%q): %w", cfg.ScheduleSpec, ErrConfig)
	}
	if cfg.Schedule == nil && cfg.ScheduleSpec != "" {
		sched, err := sgd.ParseSchedule(cfg.ScheduleSpec)
		if err != nil {
			return nil, fmt.Errorf("schedule spec %q: %w", cfg.ScheduleSpec, err)
		}
		cfg.Schedule = sched
	}
	var arrivalProc arrival.Process
	if cfg.ArrivalSpec != "" {
		p, err := arrival.Parse(cfg.ArrivalSpec)
		if err != nil {
			return nil, fmt.Errorf("arrival spec %q: %w", cfg.ArrivalSpec, err)
		}
		arrivalProc = p
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	atk := cfg.Attack
	if atk == nil {
		atk = attack.None{}
	}
	rootRNG := vec.NewRNG(cfg.Seed)

	serverModel := cfg.Model.Clone()
	dim := serverModel.Dim()
	params := serverModel.Params(nil)

	source := cfg.Source
	if source == nil {
		pool, err := sim.NewPool(serverModel, cfg.Dataset, cfg.N-cfg.F, cfg.BatchSize, rootRNG.Uint64())
		if err != nil {
			return nil, fmt.Errorf("building worker pool: %w", err)
		}
		source = pool
	}
	if source.Dim() != dim {
		return nil, fmt.Errorf("source dim %d, model dim %d: %w", source.Dim(), dim, ErrConfig)
	}

	opt, err := sgd.NewOptimizer(cfg.Schedule, dim, 0)
	if err != nil {
		return nil, fmt.Errorf("building optimizer: %w", err)
	}

	evalBatch := cfg.EvalBatch
	if evalBatch <= 0 {
		evalBatch = 512
	}
	var evalX, evalY *vec.Dense
	if cfg.EvalEvery > 0 {
		evalX, evalY, err = data.NewBatch(cfg.Dataset, rootRNG.Split(), evalBatch)
		if err != nil {
			return nil, fmt.Errorf("building eval batch: %w", err)
		}
	}

	attackRNG := rootRNG.Split()
	// The engine hands out one RoundContext per round so that selection
	// tracking and aggregation share a single distance matrix; the
	// proposal slice and the pooled update buffer are reused across all
	// rounds (every rule fully overwrites dst). With Incremental set
	// the engine additionally carries the matrix across rounds,
	// diffing each round's proposals lazily on first use.
	engine := core.NewEngine(cfg.Parallel)
	if cfg.Incremental {
		engine.EnableCache()
	}
	if cfg.Screened {
		engine.EnableScreening()
	}
	// The async state is seeded from cfg.Seed directly (not from a
	// rootRNG draw), so enabling an arrival process never shifts the
	// pool/eval/attack RNG streams — load-bearing for the sync≡async
	// differential and for trace replay in tests.
	var async *asyncState
	if arrivalProc != nil {
		async = newAsyncState(arrivalProc, cfg.Seed, cfg.N, cfg.F, dim)
	}
	proposals := make([][]float64, cfg.N)
	update := vec.GetFloats(dim)
	defer vec.PutFloats(update)
	res := &Result{
		History: make([]RoundStats, 0, cfg.Rounds),
		// NaN until the first evaluation — "never evaluated" is
		// distinguishable from a genuine zero-accuracy result.
		FinalTestAccuracy: math.NaN(),
		FinalTestLoss:     math.NaN(),
		Kernel:            vec.KernelOrder(),
	}

	for t := 0; t < cfg.Rounds; t++ {
		correct, trainLoss, err := source.Gradients(params)
		if err != nil {
			return nil, fmt.Errorf("round %d gradients: %w", t, err)
		}
		var changed []int
		if async != nil {
			changed, err = async.round(t, proposals, correct, atk, params, attackRNG)
			if err != nil {
				return nil, fmt.Errorf("round %d: %w", t, err)
			}
		} else {
			copy(proposals, correct)
			if cfg.F > 0 {
				ctx := &attack.Context{
					Round:   t,
					Params:  params,
					Correct: correct,
					F:       cfg.F,
					RNG:     attackRNG,
				}
				byz := atk.Propose(ctx)
				if len(byz) != cfg.F {
					return nil, fmt.Errorf("round %d: attack returned %d proposals, want %d: %w", t, len(byz), cfg.F, ErrConfig)
				}
				copy(proposals[cfg.N-cfg.F:], byz)
			}
		}

		stats := RoundStats{Round: t, TrainLoss: trainLoss, LearningRate: opt.CurrentRate()}

		// With Incremental set, the engine's RoundCache diffs the
		// proposals against the previous round lazily, on the first
		// Distances() request: workers whose proposals replayed
		// verbatim (crashed, stalled, frozen) cost no distance
		// recomputation, and rules that never consult distances (e.g.
		// average) never pay the O(n·d) diff at all. Callers with
		// external knowledge of the change-set can still declare it
		// via RoundContext.SetChanged.
		round := engine.Round(proposals)
		if async != nil {
			// The arrival trace knows exactly which rows changed, so
			// declare it instead of letting the cache pay the O(n·d)
			// self-diff — the honest change-set the property tests
			// audit through vec.MatrixRowUpdateCount.
			round.SetChanged(changed)
		}
		if cfg.TrackSelection {
			if sel, ok := cfg.Rule.(core.Selector); ok {
				indices, err := core.SelectContext(sel, round)
				if err != nil {
					return nil, fmt.Errorf("round %d selection: %w", t, err)
				}
				res.SelectionTrackedRounds++
				for _, idx := range indices {
					if idx >= cfg.N-cfg.F {
						stats.ByzantineChosen = true
						res.ByzantineSelectedRounds++
						break
					}
				}
			}
		}

		if err := core.AggregateContext(cfg.Rule, update, round); err != nil {
			return nil, fmt.Errorf("round %d aggregation: %w", t, err)
		}
		stats.UpdateNorm = vec.Norm(update)
		if err := opt.Step(params, update); err != nil {
			return nil, fmt.Errorf("round %d step: %w", t, err)
		}

		if !vec.AllFinite(params) {
			res.Diverged = true
			res.DivergedRound = t
			res.History = append(res.History, stats)
			if cfg.OnRound != nil {
				cfg.OnRound(stats)
			}
			break
		}

		if cfg.EvalEvery > 0 && (t%cfg.EvalEvery == cfg.EvalEvery-1 || t == cfg.Rounds-1) {
			if err := serverModel.SetParams(params); err != nil {
				return nil, fmt.Errorf("round %d eval: %w", t, err)
			}
			acc, err := model.EvalAccuracy(serverModel, evalX, evalY)
			if err != nil {
				return nil, fmt.Errorf("round %d eval accuracy: %w", t, err)
			}
			loss, err := serverModel.Loss(evalX, evalY)
			if err != nil {
				return nil, fmt.Errorf("round %d eval loss: %w", t, err)
			}
			stats.Evaluated = true
			stats.TestAccuracy = acc
			stats.TestLoss = loss
			res.FinalTestAccuracy = acc
			res.FinalTestLoss = loss
		}

		res.History = append(res.History, stats)
		if cfg.OnRound != nil {
			cfg.OnRound(stats)
		}
	}

	res.FinalParams = vec.Clone(params)
	return res, nil
}

// ByzantineSelectionRate returns the fraction of tracked rounds in
// which a Byzantine proposal was selected, or NaN when selection was
// never tracked.
func (r *Result) ByzantineSelectionRate() float64 {
	if r.SelectionTrackedRounds == 0 {
		return math.NaN()
	}
	return float64(r.ByzantineSelectedRounds) / float64(r.SelectionTrackedRounds)
}

// AccuracySeries extracts the (round, accuracy) points of every
// evaluated round — the series the figure benches print.
func (r *Result) AccuracySeries() (rounds []int, accs []float64) {
	for _, s := range r.History {
		if s.Evaluated {
			rounds = append(rounds, s.Round)
			accs = append(accs, s.TestAccuracy)
		}
	}
	return rounds, accs
}
