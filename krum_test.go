package krum_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"krum"
	"krum/internal/vec"
)

// The root-package tests exercise the re-exported public API exactly as
// a downstream user would, including the runnable godoc examples.

func ExampleKrum() {
	proposals := [][]float64{
		{1.0, 1.0}, {1.1, 0.9}, {0.9, 1.1}, {1.0, 0.9}, {0.95, 1.05},
		{100, -100}, // Byzantine
	}
	rule := krum.NewKrum(1)
	out := make([]float64, 2)
	if err := rule.Aggregate(out, proposals); err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", out)
	// Output: [1.00 1.00]
}

func ExampleMultiKrum() {
	proposals := [][]float64{
		{2, 0}, {2.2, 0}, {1.8, 0}, {2.1, 0}, {1.9, 0},
		{-500, 3}, // Byzantine
	}
	rule := krum.NewMultiKrum(1, 3) // average the 3 best-scored
	out := make([]float64, 2)
	if err := rule.Aggregate(out, proposals); err != nil {
		panic(err)
	}
	// The three selected proposals are all from the tight cluster.
	fmt.Printf("%.0f\n", out[1])
	// Output: 0
}

func ExampleEta() {
	eta, err := krum.Eta(15, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("η(15, 3) = %.2f\n", eta)
	// Output: η(15, 3) = 7.80
}

func TestPublicAPIAggregationRules(t *testing.T) {
	rng := vec.NewRNG(1)
	const n, d, f = 11, 6, 2
	proposals := make([][]float64, n)
	for i := range proposals {
		proposals[i] = rng.NewNormal(d, 1, 0.1)
	}
	rules := []krum.Rule{
		krum.NewKrum(f),
		krum.NewMultiKrum(f, 4),
		krum.Average{},
		krum.Medoid{},
		krum.CoordMedian{},
		krum.TrimmedMean{Trim: f},
		krum.GeoMedian{},
		krum.NewMinimalDiameter(f),
		krum.NewBulyan(f),
		krum.ClippedMean{},
		krum.FiniteGuard{Inner: krum.NewKrum(f)},
	}
	for _, rule := range rules {
		t.Run(rule.Name(), func(t *testing.T) {
			out := make([]float64, d)
			if err := rule.Aggregate(out, proposals); err != nil {
				t.Fatal(err)
			}
			// On a benign tight cluster every rule lands near the mean.
			mean := make([]float64, d)
			vec.Mean(mean, proposals)
			if vec.Dist(out, mean) > 1 {
				t.Errorf("%s output %v far from cluster mean", rule.Name(), out)
			}
		})
	}
}

func TestPublicErrorsAreMatchable(t *testing.T) {
	out := make([]float64, 2)
	if err := krum.NewKrum(0).Aggregate(out, nil); !errors.Is(err, krum.ErrNoVectors) {
		t.Errorf("ErrNoVectors not surfaced: %v", err)
	}
	if err := krum.NewKrum(5).Aggregate(out, [][]float64{{1, 2}, {3, 4}}); !errors.Is(err, krum.ErrTooFewWorkers) {
		t.Errorf("ErrTooFewWorkers not surfaced: %v", err)
	}
	if _, err := krum.NewLinear([]float64{0}); !errors.Is(err, krum.ErrBadParameter) {
		t.Errorf("ErrBadParameter not surfaced: %v", err)
	}
	if err := krum.NewKrum(0).Aggregate(make([]float64, 3), [][]float64{{1}, {2}, {3}}); !errors.Is(err, krum.ErrDimensionMismatch) {
		t.Errorf("ErrDimensionMismatch not surfaced: %v", err)
	}
}

func TestPublicSchedules(t *testing.T) {
	tests := []struct {
		name  string
		s     krum.Schedule
		round int
		want  float64
	}{
		{name: "constant", s: krum.ScheduleConstant(0.5), round: 100, want: 0.5},
		{name: "inverse-t", s: krum.ScheduleInverseT(1, 1), round: 1, want: 0.5},
		{name: "stretched", s: krum.ScheduleInverseTStretched(1, 1, 10), round: 10, want: 0.5},
		{name: "step", s: krum.ScheduleStep(1, 10, 0.1), round: 10, want: 0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.Rate(tt.round); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Rate(%d) = %v, want %v", tt.round, got, tt.want)
			}
		})
	}
}

func TestPublicResilienceVerifier(t *testing.T) {
	g := make([]float64, 8)
	vec.Fill(g, 1)
	rep, err := krum.VerifyResilience(krum.ResilienceConfig{
		Rule: krum.NewKrum(2), N: 11, F: 2,
		Gradient: g, Sigma: 0.05, Trials: 300, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ConditionI || !rep.ConditionII {
		t.Errorf("benign verification failed: %+v", rep)
	}
	if rep.Eta <= 0 || rep.SinAlpha <= 0 {
		t.Errorf("eta %v sinalpha %v", rep.Eta, rep.SinAlpha)
	}
}

func TestSelectorInterfaceExposed(t *testing.T) {
	var sel krum.Selector = krum.NewKrum(1)
	idx, err := sel.Select([][]float64{{0}, {0.1}, {0.2}, {50}})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] == 3 {
		t.Errorf("selected %v", idx)
	}
}
