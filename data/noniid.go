package data

import (
	"fmt"

	"krum/internal/vec"
)

// ClassFilter restricts a one-hot classification dataset to a subset of
// classes by rejection sampling. It is the building block for
// heterogeneous (non-i.i.d.) worker populations: give each worker a
// different class subset and the paper's assumption that correct
// gradients are i.i.d. unbiased estimates of ∇Q breaks — exactly the
// "biases in the way the data samples are distributed among the
// processes" failure mode of the paper's introduction, studied in
// experiment E7.
//
// Construct with NewClassFilter.
type ClassFilter struct {
	base    Dataset
	allowed []bool
	classes []int
}

// NewClassFilter wraps a one-hot dataset, keeping only the listed
// classes.
func NewClassFilter(base Dataset, classes []int) (*ClassFilter, error) {
	if base == nil {
		return nil, fmt.Errorf("nil base: %w", ErrConfig)
	}
	k := base.OutDim()
	if k < 2 {
		return nil, fmt.Errorf("base has %d outputs (need one-hot classes): %w", k, ErrConfig)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("no classes kept: %w", ErrConfig)
	}
	allowed := make([]bool, k)
	for _, c := range classes {
		if c < 0 || c >= k {
			return nil, fmt.Errorf("class %d out of range [0, %d): %w", c, k, ErrConfig)
		}
		allowed[c] = true
	}
	return &ClassFilter{
		base:    base,
		allowed: allowed,
		classes: append([]int(nil), classes...),
	}, nil
}

var _ Dataset = (*ClassFilter)(nil)

// Dim implements Dataset.
func (c *ClassFilter) Dim() int { return c.base.Dim() }

// OutDim implements Dataset (targets keep the full one-hot width so
// models are shared across heterogeneous workers).
func (c *ClassFilter) OutDim() int { return c.base.OutDim() }

// Classes returns a copy of the kept class list.
func (c *ClassFilter) Classes() []int { return append([]int(nil), c.classes...) }

// Sample implements Dataset by rejection: redraw until the base sample's
// class is in the kept set. The expected number of redraws is
// k/len(classes) for a uniform base.
func (c *ClassFilter) Sample(rng *vec.RNG, x, y []float64) {
	for {
		c.base.Sample(rng, x, y)
		if c.allowed[vec.Argmax(y)] {
			return
		}
	}
}

// PartitionClasses deals the k classes of a dataset round-robin into
// nWorkers subsets (worker i gets classes i, i+nWorkers, ...), the
// standard label-skew partition for non-i.i.d. federated experiments.
// Workers ≥ k receive a wrapped single class.
func PartitionClasses(base Dataset, nWorkers int) ([]*ClassFilter, error) {
	if nWorkers < 1 {
		return nil, fmt.Errorf("nWorkers = %d: %w", nWorkers, ErrConfig)
	}
	k := base.OutDim()
	out := make([]*ClassFilter, nWorkers)
	for w := 0; w < nWorkers; w++ {
		var classes []int
		for c := w % k; c < k; c += nWorkers {
			classes = append(classes, c)
		}
		if len(classes) == 0 {
			classes = []int{w % k}
		}
		cf, err := NewClassFilter(base, classes)
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", w, err)
		}
		out[w] = cf
	}
	return out, nil
}
