package data

import (
	"fmt"
	"math"

	"krum/internal/vec"
)

// SyntheticMNIST is the repository's stand-in for the MNIST digit task
// of the paper's image experiments: a procedural generator that renders
// the ten digits as anti-aliased stroke drawings on a Size×Size grid
// with randomized translation, scale, rotation, stroke thickness and
// pixel noise. Each class therefore has genuine intra-class variance
// and inter-class structure — an MLP improves steadily over SGD rounds
// and collapses visibly under Byzantine mis-aggregation, which is all
// the paper's Figures 4–7 require of the workload (see the workload
// substitution note in EXPERIMENTS.md).
//
// Construct with NewSyntheticMNIST.
type SyntheticMNIST struct {
	size    int
	noise   float64
	classes int
}

// NewSyntheticMNIST returns a generator of size×size digit images with
// the given per-pixel Gaussian noise (0.05 is a good default). The
// target is a 10-way one-hot vector.
func NewSyntheticMNIST(size int, noise float64) (*SyntheticMNIST, error) {
	if size < 8 {
		return nil, fmt.Errorf("size %d too small (min 8): %w", size, ErrConfig)
	}
	if noise < 0 || noise > 1 {
		return nil, fmt.Errorf("noise %g outside [0, 1]: %w", noise, ErrConfig)
	}
	return &SyntheticMNIST{size: size, noise: noise, classes: 10}, nil
}

// Dim implements Dataset.
func (m *SyntheticMNIST) Dim() int { return m.size * m.size }

// OutDim implements Dataset.
func (m *SyntheticMNIST) OutDim() int { return m.classes }

// Size returns the image side length.
func (m *SyntheticMNIST) Size() int { return m.size }

// segment is a stroke in the unit square (y grows downward).
type segment struct {
	x1, y1, x2, y2 float64
}

// digitStrokes defines each digit as a polyline skeleton in [0,1]².
// The shapes are schematic rather than calligraphic: what matters is
// that the ten classes are mutually distinguishable and internally
// variable once jittered.
var digitStrokes = [10][]segment{
	// 0: octagonal ring.
	{
		{0.50, 0.10, 0.70, 0.25}, {0.70, 0.25, 0.72, 0.50}, {0.72, 0.50, 0.70, 0.75},
		{0.70, 0.75, 0.50, 0.90}, {0.50, 0.90, 0.30, 0.75}, {0.30, 0.75, 0.28, 0.50},
		{0.28, 0.50, 0.30, 0.25}, {0.30, 0.25, 0.50, 0.10},
	},
	// 1: flag + vertical bar + base.
	{
		{0.35, 0.28, 0.52, 0.10}, {0.52, 0.10, 0.52, 0.88}, {0.38, 0.88, 0.66, 0.88},
	},
	// 2: top curve, diagonal, bottom bar.
	{
		{0.30, 0.28, 0.42, 0.13}, {0.42, 0.13, 0.62, 0.13}, {0.62, 0.13, 0.70, 0.30},
		{0.70, 0.30, 0.32, 0.85}, {0.32, 0.85, 0.72, 0.85},
	},
	// 3: double bump on the right.
	{
		{0.30, 0.15, 0.62, 0.14}, {0.62, 0.14, 0.70, 0.30}, {0.70, 0.30, 0.48, 0.48},
		{0.48, 0.48, 0.70, 0.64}, {0.70, 0.64, 0.62, 0.84}, {0.62, 0.84, 0.30, 0.85},
	},
	// 4: diagonal, crossbar, vertical.
	{
		{0.62, 0.10, 0.28, 0.60}, {0.28, 0.60, 0.76, 0.60}, {0.62, 0.10, 0.62, 0.90},
	},
	// 5: top bar, left drop, belly.
	{
		{0.70, 0.13, 0.34, 0.13}, {0.34, 0.13, 0.32, 0.45}, {0.32, 0.45, 0.60, 0.45},
		{0.60, 0.45, 0.70, 0.62}, {0.70, 0.62, 0.58, 0.85}, {0.58, 0.85, 0.30, 0.82},
	},
	// 6: descending hook with lower loop.
	{
		{0.62, 0.12, 0.40, 0.32}, {0.40, 0.32, 0.31, 0.60}, {0.31, 0.60, 0.40, 0.84},
		{0.40, 0.84, 0.62, 0.84}, {0.62, 0.84, 0.68, 0.64}, {0.68, 0.64, 0.52, 0.54},
		{0.52, 0.54, 0.33, 0.62},
	},
	// 7: top bar and steep diagonal.
	{
		{0.28, 0.14, 0.72, 0.14}, {0.72, 0.14, 0.44, 0.88},
	},
	// 8: stacked diamonds.
	{
		{0.50, 0.10, 0.34, 0.29}, {0.34, 0.29, 0.50, 0.47}, {0.50, 0.47, 0.66, 0.29},
		{0.66, 0.29, 0.50, 0.10}, {0.50, 0.47, 0.31, 0.68}, {0.31, 0.68, 0.50, 0.90},
		{0.50, 0.90, 0.69, 0.68}, {0.69, 0.68, 0.50, 0.47},
	},
	// 9: upper loop with tail.
	{
		{0.66, 0.34, 0.58, 0.15}, {0.58, 0.15, 0.38, 0.16}, {0.38, 0.16, 0.31, 0.34},
		{0.31, 0.34, 0.40, 0.50}, {0.40, 0.50, 0.62, 0.48}, {0.62, 0.48, 0.66, 0.34},
		{0.66, 0.34, 0.60, 0.88},
	},
}

// Sample implements Dataset: it renders a uniformly chosen digit.
func (m *SyntheticMNIST) Sample(rng *vec.RNG, x, y []float64) {
	digit := rng.Intn(m.classes)
	m.Render(rng, digit, x)
	for i := range y {
		y[i] = 0
	}
	y[digit] = 1
}

// Render draws one randomized instance of the given digit into img
// (len Size²), overwriting it. Pixels are in [0, 1].
func (m *SyntheticMNIST) Render(rng *vec.RNG, digit int, img []float64) {
	if digit < 0 || digit >= m.classes {
		panic(fmt.Sprintf("data: digit %d out of range", digit))
	}
	if len(img) != m.Dim() {
		panic(fmt.Sprintf("data: image buffer %d, want %d", len(img), m.Dim()))
	}
	// Random geometric jitter.
	dx := 0.12 * (rng.Float64() - 0.5)
	dy := 0.12 * (rng.Float64() - 0.5)
	scale := 0.85 + 0.3*rng.Float64()
	theta := 0.24 * (rng.Float64() - 0.5)
	sin, cos := math.Sin(theta), math.Cos(theta)
	thickness := 0.035 + 0.03*rng.Float64()
	soft := 0.5 * thickness

	// Transform the skeleton once.
	strokes := digitStrokes[digit]
	txs := make([]segment, len(strokes))
	for i, s := range strokes {
		txs[i] = segment{
			x1: transformX(s.x1, s.y1, scale, sin, cos) + dx,
			y1: transformY(s.x1, s.y1, scale, sin, cos) + dy,
			x2: transformX(s.x2, s.y2, scale, sin, cos) + dx,
			y2: transformY(s.x2, s.y2, scale, sin, cos) + dy,
		}
	}

	sz := float64(m.size)
	for py := 0; py < m.size; py++ {
		cy := (float64(py) + 0.5) / sz
		for px := 0; px < m.size; px++ {
			cx := (float64(px) + 0.5) / sz
			d := math.Inf(1)
			for _, s := range txs {
				if sd := segmentDist(cx, cy, s); sd < d {
					d = sd
				}
			}
			var intensity float64
			switch {
			case d <= thickness:
				intensity = 1
			default:
				t := (d - thickness) / soft
				intensity = math.Exp(-t * t)
			}
			if m.noise > 0 {
				intensity += m.noise * rng.NormFloat64()
			}
			if intensity < 0 {
				intensity = 0
			} else if intensity > 1 {
				intensity = 1
			}
			img[py*m.size+px] = intensity
		}
	}
}

// transformX/transformY rotate about the glyph center (0.5, 0.5) and
// scale.
func transformX(x, y, scale, sin, cos float64) float64 {
	rx, ry := x-0.5, y-0.5
	return 0.5 + scale*(rx*cos-ry*sin)
}

func transformY(x, y, scale, sin, cos float64) float64 {
	rx, ry := x-0.5, y-0.5
	return 0.5 + scale*(rx*sin+ry*cos)
}

// segmentDist returns the Euclidean distance from point (px, py) to the
// segment s.
func segmentDist(px, py float64, s segment) float64 {
	vx, vy := s.x2-s.x1, s.y2-s.y1
	wx, wy := px-s.x1, py-s.y1
	len2 := vx*vx + vy*vy
	var t float64
	if len2 > 0 {
		t = (wx*vx + wy*vy) / len2
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	dx := px - (s.x1 + t*vx)
	dy := py - (s.y1 + t*vy)
	return math.Sqrt(dx*dx + dy*dy)
}
