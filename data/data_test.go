package data

import (
	"errors"
	"math"
	"testing"

	"krum/internal/vec"
)

func TestGaussianMixtureConstruction(t *testing.T) {
	if _, err := NewGaussianMixture(1, 2, 1, 1, 0); !errors.Is(err, ErrConfig) {
		t.Error("k=1 accepted")
	}
	if _, err := NewGaussianMixture(2, 0, 1, 1, 0); !errors.Is(err, ErrConfig) {
		t.Error("dim=0 accepted")
	}
	if _, err := NewGaussianMixture(2, 2, 0, 1, 0); !errors.Is(err, ErrConfig) {
		t.Error("radius=0 accepted")
	}
	g, err := NewGaussianMixture(3, 5, 4, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim() != 5 || g.OutDim() != 3 {
		t.Errorf("dims = (%d, %d)", g.Dim(), g.OutDim())
	}
}

func TestGaussianMixtureSamplesClusterAroundCenters(t *testing.T) {
	g, err := NewGaussianMixture(4, 6, 5, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(1)
	x := make([]float64, g.Dim())
	y := make([]float64, g.OutDim())
	classCounts := make([]int, 4)
	for i := 0; i < 2000; i++ {
		g.Sample(rng, x, y)
		// One-hot target.
		if math.Abs(vec.Sum(y)-1) > 1e-12 {
			t.Fatalf("target not one-hot: %v", y)
		}
		k := vec.Argmax(y)
		classCounts[k]++
		// Sample near the radius-5 sphere: norm within [3, 7].
		nrm := vec.Norm(x)
		if nrm < 3 || nrm > 7 {
			t.Fatalf("sample norm %v implausible for radius 5, σ 0.2", nrm)
		}
	}
	for k, c := range classCounts {
		if c < 300 {
			t.Errorf("class %d sampled only %d/2000 times", k, c)
		}
	}
}

func TestLinearRegressionStream(t *testing.T) {
	if _, err := NewLinearRegressionStream(0, 1, 0.1, 0); !errors.Is(err, ErrConfig) {
		t.Error("inDim=0 accepted")
	}
	if _, err := NewLinearRegressionStream(2, 1, -1, 0); !errors.Is(err, ErrConfig) {
		t.Error("negative noise accepted")
	}
	ls, err := NewLinearRegressionStream(3, 2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// With zero noise, y must be an exact affine function of x; verify
	// via TruthParams layout: y_o = b_o + Σ_i W[i*out+o]·x_i.
	truth := ls.TruthParams()
	if len(truth) != 3*2+2 {
		t.Fatalf("TruthParams length %d", len(truth))
	}
	rng := vec.NewRNG(2)
	x := make([]float64, 3)
	y := make([]float64, 2)
	for trial := 0; trial < 50; trial++ {
		ls.Sample(rng, x, y)
		for o := 0; o < 2; o++ {
			want := truth[3*2+o]
			for i := 0; i < 3; i++ {
				want += truth[i*2+o] * x[i]
			}
			if math.Abs(want-y[o]) > 1e-9 {
				t.Fatalf("trial %d: y[%d] = %v, want %v", trial, o, y[o], want)
			}
		}
	}
}

func TestFillBatchValidation(t *testing.T) {
	g, err := NewGaussianMixture(2, 3, 1, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(0)
	if err := FillBatch(g, rng, vec.NewDense(2, 3), vec.NewDense(3, 2)); !errors.Is(err, ErrConfig) {
		t.Error("row mismatch accepted")
	}
	if err := FillBatch(g, rng, vec.NewDense(2, 4), vec.NewDense(2, 2)); !errors.Is(err, ErrConfig) {
		t.Error("width mismatch accepted")
	}
	if _, _, err := NewBatch(g, rng, 0); !errors.Is(err, ErrConfig) {
		t.Error("batch=0 accepted")
	}
	x, y, err := NewBatch(g, rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 5 || y.Rows != 5 || x.Cols != 3 || y.Cols != 2 {
		t.Errorf("batch shapes (%dx%d, %dx%d)", x.Rows, x.Cols, y.Rows, y.Cols)
	}
}

func TestLabelFlipBinary(t *testing.T) {
	s, err := NewSyntheticSpambase(0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	flipped := LabelFlip{Base: s}
	if flipped.Dim() != s.Dim() || flipped.OutDim() != 1 {
		t.Error("LabelFlip changed shape")
	}
	rng1 := vec.NewRNG(9)
	rng2 := vec.NewRNG(9)
	x1 := make([]float64, s.Dim())
	x2 := make([]float64, s.Dim())
	y1 := make([]float64, 1)
	y2 := make([]float64, 1)
	for i := 0; i < 100; i++ {
		s.Sample(rng1, x1, y1)
		flipped.Sample(rng2, x2, y2)
		if !vec.ApproxEqual(x1, x2, 0) {
			t.Fatal("LabelFlip changed features")
		}
		if y2[0] != 1-y1[0] {
			t.Fatalf("label not flipped: %v vs %v", y1[0], y2[0])
		}
	}
}

func TestLabelFlipOneHot(t *testing.T) {
	g, err := NewGaussianMixture(3, 2, 1, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	flipped := LabelFlip{Base: g}
	rng1 := vec.NewRNG(4)
	rng2 := vec.NewRNG(4)
	x := make([]float64, 2)
	y1 := make([]float64, 3)
	y2 := make([]float64, 3)
	for i := 0; i < 100; i++ {
		g.Sample(rng1, x, y1)
		flipped.Sample(rng2, x, y2)
		want := (vec.Argmax(y1) + 1) % 3
		if vec.Argmax(y2) != want || math.Abs(vec.Sum(y2)-1) > 1e-12 {
			t.Fatalf("one-hot flip wrong: %v -> %v", y1, y2)
		}
	}
}

func TestDatasetsAreRNGDeterministic(t *testing.T) {
	datasets := map[string]Dataset{}
	g, err := NewGaussianMixture(3, 4, 2, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	datasets["mixture"] = g
	sp, err := NewSyntheticSpambase(0.39, 5)
	if err != nil {
		t.Fatal(err)
	}
	datasets["spambase"] = sp
	mn, err := NewSyntheticMNIST(12, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	datasets["mnist"] = mn

	for name, ds := range datasets {
		t.Run(name, func(t *testing.T) {
			x1 := make([]float64, ds.Dim())
			x2 := make([]float64, ds.Dim())
			y1 := make([]float64, ds.OutDim())
			y2 := make([]float64, ds.OutDim())
			r1, r2 := vec.NewRNG(77), vec.NewRNG(77)
			for i := 0; i < 20; i++ {
				ds.Sample(r1, x1, y1)
				ds.Sample(r2, x2, y2)
				if !vec.ApproxEqual(x1, x2, 0) || !vec.ApproxEqual(y1, y2, 0) {
					t.Fatal("same RNG seed produced different samples")
				}
			}
		})
	}
}
