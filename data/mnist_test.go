package data

import (
	"errors"
	"testing"

	"krum/internal/vec"
	"krum/model"
)

func TestSyntheticMNISTConstruction(t *testing.T) {
	if _, err := NewSyntheticMNIST(4, 0.05); !errors.Is(err, ErrConfig) {
		t.Error("tiny size accepted")
	}
	if _, err := NewSyntheticMNIST(28, 1.5); !errors.Is(err, ErrConfig) {
		t.Error("noise > 1 accepted")
	}
	m, err := NewSyntheticMNIST(28, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 784 || m.OutDim() != 10 || m.Size() != 28 {
		t.Errorf("shape: dim=%d out=%d size=%d", m.Dim(), m.OutDim(), m.Size())
	}
}

func TestRenderPixelsInRange(t *testing.T) {
	m, err := NewSyntheticMNIST(20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(1)
	img := make([]float64, m.Dim())
	for digit := 0; digit < 10; digit++ {
		m.Render(rng, digit, img)
		var ink float64
		for _, p := range img {
			if p < 0 || p > 1 {
				t.Fatalf("digit %d: pixel %v out of [0,1]", digit, p)
			}
			ink += p
		}
		// A digit must leave a visible amount of ink but not flood the
		// image: between 2% and 60% of total intensity.
		frac := ink / float64(len(img))
		if frac < 0.02 || frac > 0.6 {
			t.Errorf("digit %d: ink fraction %v implausible", digit, frac)
		}
	}
}

func TestRenderPanicsOnBadArgs(t *testing.T) {
	m, err := NewSyntheticMNIST(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(1)
	t.Run("bad digit", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("digit 10 did not panic")
			}
		}()
		m.Render(rng, 10, make([]float64, m.Dim()))
	})
	t.Run("bad buffer", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("short buffer did not panic")
			}
		}()
		m.Render(rng, 0, make([]float64, 5))
	})
}

func TestInstancesOfSameDigitVary(t *testing.T) {
	m, err := NewSyntheticMNIST(16, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(2)
	a := make([]float64, m.Dim())
	b := make([]float64, m.Dim())
	m.Render(rng, 3, a)
	m.Render(rng, 3, b)
	if vec.ApproxEqual(a, b, 1e-9) {
		t.Error("two renders of the same digit are identical — no jitter")
	}
	// But they must still be correlated (same class): distance between
	// same-digit instances should be well below distance to a flat
	// image.
	if vec.Dist2(a, b) >= vec.Norm2(a) {
		t.Error("same-digit instances are uncorrelated")
	}
}

// The decisive test for the substitution: a linear softmax classifier
// must learn the ten classes far beyond chance from the stream alone.
func TestSyntheticMNISTIsLearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	const size = 14
	ds, err := NewSyntheticMNIST(size, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := model.NewSoftmaxClassifier(ds.Dim(), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(10)
	grad := make([]float64, clf.Dim())
	p := clf.Params(nil)
	const batch = 32
	x := vec.NewDense(batch, ds.Dim())
	y := vec.NewDense(batch, 10)
	for step := 0; step < 400; step++ {
		if err := FillBatch(ds, rng, x, y); err != nil {
			t.Fatal(err)
		}
		if _, err := clf.Gradient(grad, x, y); err != nil {
			t.Fatal(err)
		}
		vec.Axpy(-0.5, grad, p)
		if err := clf.SetParams(p); err != nil {
			t.Fatal(err)
		}
	}
	// Held-out evaluation.
	testRNG := vec.NewRNG(999)
	tx := vec.NewDense(500, ds.Dim())
	ty := vec.NewDense(500, 10)
	if err := FillBatch(ds, testRNG, tx, ty); err != nil {
		t.Fatal(err)
	}
	acc, err := model.EvalAccuracy(clf, tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Errorf("linear classifier accuracy %v on synthetic MNIST, want ≥ 0.6 (chance = 0.1)", acc)
	}
	t.Logf("synthetic MNIST linear accuracy: %.3f", acc)
}

func TestSyntheticSpambaseShapeAndPrior(t *testing.T) {
	if _, err := NewSyntheticSpambase(0, 1); !errors.Is(err, ErrConfig) {
		t.Error("rate 0 accepted")
	}
	if _, err := NewSyntheticSpambase(1, 1); !errors.Is(err, ErrConfig) {
		t.Error("rate 1 accepted")
	}
	s, err := NewSyntheticSpambase(0.394, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != SpambaseDim || s.OutDim() != 1 {
		t.Errorf("dims (%d, %d)", s.Dim(), s.OutDim())
	}
	rng := vec.NewRNG(3)
	x := make([]float64, s.Dim())
	y := make([]float64, 1)
	spam := 0
	const n = 5000
	for i := 0; i < n; i++ {
		s.Sample(rng, x, y)
		if y[0] == 1 {
			spam++
		}
		for j, v := range x {
			if v < 0 {
				t.Fatalf("negative frequency feature %d: %v", j, v)
			}
		}
	}
	rate := float64(spam) / n
	if rate < 0.35 || rate > 0.45 {
		t.Errorf("spam rate %v, want ≈0.394", rate)
	}
}

func TestSyntheticSpambaseIsLearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop")
	}
	s, err := NewSyntheticSpambase(0.394, 2)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := model.NewLogistic(s.Dim(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := vec.NewRNG(11)
	grad := make([]float64, clf.Dim())
	p := clf.Params(nil)
	const batch = 32
	x := vec.NewDense(batch, s.Dim())
	y := vec.NewDense(batch, 1)
	for step := 0; step < 500; step++ {
		if err := FillBatch(s, rng, x, y); err != nil {
			t.Fatal(err)
		}
		if _, err := clf.Gradient(grad, x, y); err != nil {
			t.Fatal(err)
		}
		vec.Axpy(-0.3, grad, p)
		if err := clf.SetParams(p); err != nil {
			t.Fatal(err)
		}
	}
	tx := vec.NewDense(1000, s.Dim())
	ty := vec.NewDense(1000, 1)
	if err := FillBatch(s, vec.NewRNG(500), tx, ty); err != nil {
		t.Fatal(err)
	}
	acc, err := model.EvalAccuracy(clf, tx, ty)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("logistic accuracy %v on synthetic spambase, want ≥ 0.8", acc)
	}
	t.Logf("synthetic spambase logistic accuracy: %.3f", acc)
}
