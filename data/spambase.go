package data

import (
	"fmt"

	"krum/internal/vec"
)

// SyntheticSpambase mirrors the shape of the UCI Spambase corpus the
// paper's spam-filtering experiment uses: 57 real-valued features
// (54 word/character frequencies plus 3 capital-run-length statistics)
// and a binary spam/ham label with ≈39% spam prevalence. Features are
// generated from a planted two-class model with class-conditional
// frequency profiles and correlated "burstiness", so a logistic
// regression reaches high-but-imperfect accuracy — the regime the
// paper's Figure 4-style spam experiments operate in.
//
// Construct with NewSyntheticSpambase.
type SyntheticSpambase struct {
	dim       int
	spamRate  float64
	hamFreq   []float64 // mean frequency profile for ham
	spamFreq  []float64 // mean frequency profile for spam
	featNoise float64
}

// SpambaseDim is the UCI Spambase feature dimension.
const SpambaseDim = 57

// NewSyntheticSpambase builds the planted model deterministically from
// seed. spamRate is the class prior for the spam class; the UCI corpus
// has ≈0.394.
func NewSyntheticSpambase(spamRate float64, seed uint64) (*SyntheticSpambase, error) {
	if spamRate <= 0 || spamRate >= 1 {
		return nil, fmt.Errorf("spamRate %g outside (0, 1): %w", spamRate, ErrConfig)
	}
	rng := vec.NewRNG(seed)
	s := &SyntheticSpambase{
		dim:       SpambaseDim,
		spamRate:  spamRate,
		hamFreq:   make([]float64, SpambaseDim),
		spamFreq:  make([]float64, SpambaseDim),
		featNoise: 0.35,
	}
	// Word/char frequency profiles: most words are rare in both classes;
	// a subset is strongly class-indicative in either direction
	// (think "free", "money" vs "george", "meeting").
	for j := 0; j < 54; j++ {
		base := 0.1 + 0.4*rng.Float64()
		s.hamFreq[j] = base
		s.spamFreq[j] = base
		switch {
		case j%5 == 0: // spam-indicative
			s.spamFreq[j] += 0.5 + 0.8*rng.Float64()
		case j%7 == 0: // ham-indicative
			s.hamFreq[j] += 0.5 + 0.8*rng.Float64()
		}
	}
	// Capital-run-length statistics: heavier-tailed and larger for spam.
	for j := 54; j < 57; j++ {
		s.hamFreq[j] = 1.5
		s.spamFreq[j] = 3.5
	}
	return s, nil
}

// Dim implements Dataset.
func (s *SyntheticSpambase) Dim() int { return s.dim }

// OutDim implements Dataset (binary scalar target).
func (s *SyntheticSpambase) OutDim() int { return 1 }

// Sample implements Dataset.
func (s *SyntheticSpambase) Sample(rng *vec.RNG, x, y []float64) {
	spam := rng.Float64() < s.spamRate
	profile := s.hamFreq
	if spam {
		profile = s.spamFreq
	}
	// A per-message "verbosity" factor correlates all frequencies,
	// mimicking document-length effects in real corpora.
	verbosity := 0.6 + 0.8*rng.Float64()
	for j := range x {
		v := profile[j]*verbosity + s.featNoise*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		if j >= 54 {
			// Run lengths are heavy tailed: square the positive part.
			v = v * v / 2
		}
		x[j] = v
	}
	if spam {
		y[0] = 1
	} else {
		y[0] = 0
	}
}
