// Package data provides the dataset substrates for the reproduction.
// The paper's experiments (full version) use MNIST and UCI Spambase;
// neither ships with an offline stdlib-only repository, so this package
// implements generative stand-ins that exercise the identical code path:
// i.i.d. sample streams with real intra-class structure, from which
// workers draw mini-batches to compute gradient estimates
// (V = G(x, ξ), Section 2 of the paper). See the workload substitution
// note in EXPERIMENTS.md for the rationale.
//
// All generators are deterministic given an RNG, so every experiment is
// reproducible from a single seed.
package data

import (
	"errors"
	"fmt"

	"krum/internal/vec"
)

// ErrConfig is returned for invalid dataset configurations.
var ErrConfig = errors.New("data: bad configuration")

// Dataset is an infinite i.i.d. sample stream — the distribution the
// paper's correct workers draw ξ from. Implementations must be
// stateless with respect to sampling: all randomness comes from the
// caller-provided RNG, so distinct workers with split RNGs draw
// independent samples from the same distribution.
type Dataset interface {
	// Dim returns the feature dimension.
	Dim() int
	// OutDim returns the target dimension (1 for scalar/binary targets,
	// #classes for one-hot).
	OutDim() int
	// Sample fills x (len Dim) and y (len OutDim) with one draw.
	Sample(rng *vec.RNG, x, y []float64)
}

// FillBatch draws x.Rows i.i.d. samples into the batch matrices. The
// two matrices must have x.Rows == y.Rows, x.Cols == ds.Dim() and
// y.Cols == ds.OutDim().
func FillBatch(ds Dataset, rng *vec.RNG, x, y *vec.Dense) error {
	if x.Rows != y.Rows {
		return fmt.Errorf("x has %d rows, y has %d: %w", x.Rows, y.Rows, ErrConfig)
	}
	if x.Cols != ds.Dim() || y.Cols != ds.OutDim() {
		return fmt.Errorf("batch shape (%d, %d), want (%d, %d): %w",
			x.Cols, y.Cols, ds.Dim(), ds.OutDim(), ErrConfig)
	}
	for i := 0; i < x.Rows; i++ {
		ds.Sample(rng, x.Row(i), y.Row(i))
	}
	return nil
}

// NewBatch allocates and fills a batch of the given size.
func NewBatch(ds Dataset, rng *vec.RNG, batch int) (*vec.Dense, *vec.Dense, error) {
	if batch <= 0 {
		return nil, nil, fmt.Errorf("batch %d: %w", batch, ErrConfig)
	}
	x := vec.NewDense(batch, ds.Dim())
	y := vec.NewDense(batch, ds.OutDim())
	if err := FillBatch(ds, rng, x, y); err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// GaussianMixture is a K-class classification stream: class k is an
// isotropic Gaussian around its center, targets are one-hot. It is the
// simplest workload on which mis-aggregation is visible, used heavily in
// tests and the quickstart example. Construct with NewGaussianMixture.
type GaussianMixture struct {
	centers [][]float64
	sigma   float64
}

// NewGaussianMixture places k class centers deterministically (from
// seed) on a sphere of the given radius in dim dimensions, with
// per-class spread sigma.
func NewGaussianMixture(k, dim int, radius, sigma float64, seed uint64) (*GaussianMixture, error) {
	if k < 2 || dim < 1 {
		return nil, fmt.Errorf("k=%d dim=%d: %w", k, dim, ErrConfig)
	}
	if radius <= 0 || sigma <= 0 {
		return nil, fmt.Errorf("radius=%g sigma=%g: %w", radius, sigma, ErrConfig)
	}
	rng := vec.NewRNG(seed)
	centers := make([][]float64, k)
	for i := range centers {
		c := rng.NewNormal(dim, 0, 1)
		nrm := vec.Norm(c)
		if nrm == 0 {
			nrm = 1
		}
		vec.Scale(radius/nrm, c)
		centers[i] = c
	}
	return &GaussianMixture{centers: centers, sigma: sigma}, nil
}

// Dim implements Dataset.
func (g *GaussianMixture) Dim() int { return len(g.centers[0]) }

// OutDim implements Dataset.
func (g *GaussianMixture) OutDim() int { return len(g.centers) }

// Sample implements Dataset.
func (g *GaussianMixture) Sample(rng *vec.RNG, x, y []float64) {
	k := rng.Intn(len(g.centers))
	c := g.centers[k]
	for i := range x {
		x[i] = c[i] + g.sigma*rng.NormFloat64()
	}
	for i := range y {
		y[i] = 0
	}
	y[k] = 1
}

// LinearRegressionStream is the strongly convex regression workload
// y = A·x + b + ε used for the Proposition 4.3 convergence experiments:
// its quadratic cost satisfies every assumption of the theorem with
// explicit constants. Construct with NewLinearRegressionStream.
type LinearRegressionStream struct {
	a     *vec.Dense // outDim × inDim
	b     []float64
	noise float64
}

// NewLinearRegressionStream draws a ground-truth linear map
// deterministically from seed; ε is N(0, noise²) per output coordinate.
func NewLinearRegressionStream(inDim, outDim int, noise float64, seed uint64) (*LinearRegressionStream, error) {
	if inDim < 1 || outDim < 1 {
		return nil, fmt.Errorf("inDim=%d outDim=%d: %w", inDim, outDim, ErrConfig)
	}
	if noise < 0 {
		return nil, fmt.Errorf("noise=%g: %w", noise, ErrConfig)
	}
	rng := vec.NewRNG(seed)
	a := vec.NewDense(outDim, inDim)
	rng.FillNormal(a.Data, 0, 1)
	return &LinearRegressionStream{
		a:     a,
		b:     rng.NewNormal(outDim, 0, 1),
		noise: noise,
	}, nil
}

// Dim implements Dataset.
func (l *LinearRegressionStream) Dim() int { return l.a.Cols }

// OutDim implements Dataset.
func (l *LinearRegressionStream) OutDim() int { return l.a.Rows }

// Sample implements Dataset.
func (l *LinearRegressionStream) Sample(rng *vec.RNG, x, y []float64) {
	rng.FillNormal(x, 0, 1)
	for o := 0; o < l.a.Rows; o++ {
		y[o] = l.b[o] + vec.Dot(l.a.Row(o), x) + l.noise*rng.NormFloat64()
	}
}

// TruthParams returns the flat ground-truth parameters in the layout of
// model.NewLinearRegression (W row-major in×out, then bias), letting
// tests measure parameter-recovery error directly.
func (l *LinearRegressionStream) TruthParams() []float64 {
	in, out := l.a.Cols, l.a.Rows
	p := make([]float64, in*out+out)
	for i := 0; i < in; i++ {
		for o := 0; o < out; o++ {
			p[i*out+o] = l.a.At(o, i)
		}
	}
	copy(p[in*out:], l.b)
	return p
}

// LabelFlip wraps a classification dataset and flips every label —
// the data-poisoning behaviour a "biased" worker exhibits in the
// paper's motivation (Section 1: "biases in the way the data samples
// are distributed among the processes"). For one-hot targets the label
// rotates by one class; for binary targets it complements.
type LabelFlip struct {
	// Base is the wrapped dataset.
	Base Dataset
}

var _ Dataset = LabelFlip{}

// Dim implements Dataset.
func (l LabelFlip) Dim() int { return l.Base.Dim() }

// OutDim implements Dataset.
func (l LabelFlip) OutDim() int { return l.Base.OutDim() }

// Sample implements Dataset.
func (l LabelFlip) Sample(rng *vec.RNG, x, y []float64) {
	l.Base.Sample(rng, x, y)
	if len(y) == 1 {
		y[0] = 1 - y[0]
		return
	}
	// Rotate the one-hot position by one.
	hot := vec.Argmax(y)
	y[hot] = 0
	y[(hot+1)%len(y)] = 1
}
