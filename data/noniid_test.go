package data

import (
	"errors"
	"testing"

	"krum/internal/vec"
)

func TestClassFilterValidation(t *testing.T) {
	g, err := NewGaussianMixture(4, 3, 2, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClassFilter(nil, []int{0}); !errors.Is(err, ErrConfig) {
		t.Error("nil base accepted")
	}
	if _, err := NewClassFilter(g, nil); !errors.Is(err, ErrConfig) {
		t.Error("empty class list accepted")
	}
	if _, err := NewClassFilter(g, []int{4}); !errors.Is(err, ErrConfig) {
		t.Error("out-of-range class accepted")
	}
	s, err := NewSyntheticSpambase(0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClassFilter(s, []int{0}); !errors.Is(err, ErrConfig) {
		t.Error("binary (non one-hot) base accepted")
	}
}

func TestClassFilterOnlyEmitsKeptClasses(t *testing.T) {
	g, err := NewGaussianMixture(5, 3, 2, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := NewClassFilter(g, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cf.Dim() != g.Dim() || cf.OutDim() != g.OutDim() {
		t.Error("filter changed shape")
	}
	rng := vec.NewRNG(3)
	x := make([]float64, cf.Dim())
	y := make([]float64, cf.OutDim())
	seen := map[int]int{}
	for i := 0; i < 500; i++ {
		cf.Sample(rng, x, y)
		cls := vec.Argmax(y)
		if cls != 1 && cls != 3 {
			t.Fatalf("emitted class %d", cls)
		}
		seen[cls]++
	}
	if seen[1] < 100 || seen[3] < 100 {
		t.Errorf("class balance off: %v", seen)
	}
	// Classes() is a copy.
	cs := cf.Classes()
	cs[0] = 99
	if cf.Classes()[0] != 1 {
		t.Error("Classes() exposes internal state")
	}
}

func TestPartitionClasses(t *testing.T) {
	g, err := NewGaussianMixture(10, 4, 2, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionClasses(g, 0); !errors.Is(err, ErrConfig) {
		t.Error("zero workers accepted")
	}
	parts, err := PartitionClasses(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("%d partitions", len(parts))
	}
	// Round-robin: worker 0 gets {0,4,8}, worker 1 {1,5,9}, ...
	covered := map[int]bool{}
	for w, p := range parts {
		for _, c := range p.Classes() {
			if c%4 != w {
				t.Errorf("worker %d got class %d", w, c)
			}
			covered[c] = true
		}
	}
	if len(covered) != 10 {
		t.Errorf("only %d classes covered", len(covered))
	}
	// More workers than classes: everyone still has at least one class.
	many, err := PartitionClasses(g, 15)
	if err != nil {
		t.Fatal(err)
	}
	for w, p := range many {
		if len(p.Classes()) == 0 {
			t.Errorf("worker %d has no classes", w)
		}
	}
}
